#include "difftest/scoreboard.h"

#include <cstdio>
#include <cstring>

namespace minjie::difftest {

using uarch::Transaction;
using uarch::TxnKind;

namespace {

/** The single-writer invariant is enforced among the L1 caches; inner
 *  levels legitimately hold lines concurrently with their children. */
bool
isL1(const Transaction &txn)
{
    return std::strncmp(txn.cacheName, "L1I", 3) == 0 ||
           std::strncmp(txn.cacheName, "L1D", 3) == 0;
}

} // namespace

PermissionScoreboard::Perm
PermissionScoreboard::permOf(Addr line, const char *name) const
{
    auto it = perms_.find(line);
    if (it == perms_.end())
        return Perm::None;
    auto jt = it->second.find(std::string_view(name));
    return jt == it->second.end() ? Perm::None : jt->second;
}

void
PermissionScoreboard::violation(const char *what, const Transaction &txn)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "scoreboard: %s (%s on %s line 0x%llx at cycle %llu)",
                  what, txnKindName(txn.kind), txn.cacheName,
                  static_cast<unsigned long long>(txn.line),
                  static_cast<unsigned long long>(txn.at));
    violations_.push_back(buf);
}

void
PermissionScoreboard::onTransaction(const Transaction &txn)
{
    if (!isL1(txn))
        return;
    ++checked_;
    auto &lineMap = perms_[txn.line];

    switch (txn.kind) {
      case TxnKind::GrantExclusive:
        for (const auto &[cache, perm] : lineMap) {
            if (cache != txn.cacheName && perm != Perm::None) {
                violation("exclusive grant while a peer holds the line",
                          txn);
                break;
            }
        }
        lineMap[txn.cacheName] = Perm::Exclusive;
        break;

      case TxnKind::GrantShared:
        for (const auto &[cache, perm] : lineMap) {
            if (cache != txn.cacheName && perm == Perm::Exclusive) {
                violation("shared grant while a peer holds exclusively",
                          txn);
                break;
            }
        }
        lineMap[txn.cacheName] = Perm::Shared;
        break;

      case TxnKind::ProbeInvalid:
        lineMap[txn.cacheName] = Perm::None;
        break;

      case TxnKind::ProbeShared:
        if (lineMap[txn.cacheName] == Perm::Exclusive)
            lineMap[txn.cacheName] = Perm::Shared;
        break;

      case TxnKind::Release:
        // A release without a prior permission is a protocol bug.
        if (permOf(txn.line, txn.cacheName) == Perm::None)
            violation("release from a cache holding no permission", txn);
        break;

      default:
        break;
    }
}

} // namespace minjie::difftest
