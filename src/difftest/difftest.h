/**
 * @file
 * DiffTest: the DRAV co-simulation framework (paper Section III-B).
 *
 * One REF (a NEMU instance with private memory) per DUT core runs in
 * lock-step with the DUT's commit stream, synchronized by diff-rules:
 *
 *  - MMIO skip rule       — device accesses are trusted from the DUT and
 *                           replayed into the REF architecturally;
 *  - page-fault rule      — the DUT may raise a page fault the REF does
 *                           not observe (speculative/stale TLB, Fig. 3);
 *                           the REF is forced to take the same trap, and
 *                           repeated forcing at one pc is rejected;
 *  - SC-failure rule      — a store-conditional may fail on the DUT for
 *                           micro-architectural reasons; the REF's
 *                           reservation is broken so it fails too (with
 *                           the same repeat guard);
 *  - interrupt rule       — asynchronous interrupts are taken when the
 *                           DUT says so (the Dromajo approach);
 *  - Global-Memory rule   — on a load-value mismatch in multi-core
 *                           runs, a value another hart provably stored
 *                           is accepted and patched into the REF;
 *  - ~120 CSR field rules — see csr_rules.h;
 *  - permission scoreboard— coherence transactions are checked against
 *                           the single-writer invariant.
 *
 * Rules can be enabled/disabled at runtime ("reconfigure the reference
 * model on-the-fly", Section III-B1).
 */

#ifndef MINJIE_DIFFTEST_DIFFTEST_H
#define MINJIE_DIFFTEST_DIFFTEST_H

#include <map>
#include <memory>
#include <string>

#include "difftest/csr_rules.h"
#include "difftest/global_memory.h"
#include "difftest/scoreboard.h"
#include "nemu/nemu.h"
#include "obs/trace.h"
#include "xiangshan/soc.h"

namespace minjie::difftest {

/** Which diff-rules are active. */
struct RuleConfig
{
    bool skipMmio = true;
    bool pageFault = true;
    bool scFailure = true;
    bool forcedInterrupt = true;
    bool globalMemory = true;   ///< multi-core load-value rule
    bool csrRules = true;
    bool scoreboard = true;
    unsigned maxForcedPerPc = 8; ///< repeat guard (Section III-B2c)
};

/**
 * Machine-readable record of the first divergence. Campaign tooling
 * buckets failures by signature() instead of parsing the log text.
 */
struct DivergenceReport
{
    enum class Kind { None, Pc, Trap, Rd, FpRd, Csr, Rule };

    bool valid = false;
    Kind kind = Kind::None;
    HartId hart = 0;
    Addr pc = 0;
    uint32_t inst = 0;   ///< raw encoding at the diverging commit
    unsigned reg = 0;    ///< diverging x/f register (Rd/FpRd kinds)
    uint64_t dutVal = 0;
    uint64_t refVal = 0;
    std::string rule;    ///< checker or diff-rule that flagged it

    /**
     * Stable bucket key: kind, opcode class and mnemonic (the pc and
     * raw values stay out of the key so the same logical bug groups
     * across different random programs; they remain in the record).
     */
    std::string signature() const;
};

/** Counters of rule applications (visible in reports and tests). */
struct DiffStats
{
    uint64_t commitsChecked = 0;
    uint64_t mmioSkips = 0;
    uint64_t forcedPageFaults = 0;
    uint64_t forcedScFailures = 0;
    uint64_t forcedInterrupts = 0;
    uint64_t globalMemoryPatches = 0;
    uint64_t csrChecks = 0;
};

class DiffTest
{
  public:
    /**
     * Attach to @p dut: hooks every core's commit and store probes and
     * builds one REF per core. The DUT's programs must already be
     * loaded into its memory; call loadRef() with the same program
     * data to initialize the REF memories.
     */
    explicit DiffTest(xs::Soc &dut, const RuleConfig &rules = {});
    ~DiffTest();

    /** Copy @p len bytes at @p addr into every REF's memory. */
    void loadRefMemory(Addr addr, const void *data, size_t len);

    /** Reset every REF to @p entry (mirror of Soc::setEntry). */
    void resetRefs(Addr entry);

    /** True while no mismatch has been detected. */
    bool ok() const { return failures_.empty(); }

    /** Human-readable mismatch log (empty when ok). */
    const std::vector<std::string> &failures() const { return failures_; }

    const DiffStats &stats() const { return stats_; }

    /** First divergence in structured form (valid once !ok()). */
    const DivergenceReport &divergence() const { return div_; }
    const PermissionScoreboard &scoreboard() const { return scoreboard_; }

    /** Callback invoked on the first mismatch (LightSSS hooks here). */
    void setOnMismatch(std::function<void(const std::string &)> fn)
    {
        onMismatch_ = std::move(fn);
    }

    /** Reconfigure the rule set on-the-fly. */
    RuleConfig &rules() { return rules_; }

    /**
     * Run the DUT under co-simulation until completion or a mismatch.
     * @return cycles simulated
     */
    Cycle run(Cycle maxCycles);

    /** Access a REF (e.g. for final-state assertions in tests). */
    nemu::Nemu &ref(HartId hart) { return *refs_[hart]; }

    /**
     * The last N committed instructions before the mismatch (our
     * analogue of the paper's Waveform Terminator: the trace tail a
     * developer inspects first), rendered as text.
     */
    std::vector<std::string> recentCommitTrace() const;

    /**
     * Attach an obs tracer (typically also attached to the DUT core):
     * on the first mismatch a Divergence event is recorded and the
     * tracer's last-K window is frozen into divergenceWindow().
     * @param lastK  events to keep alongside the DivergenceReport
     */
    void attachTrace(obs::TraceBuffer *trace, size_t lastK = 256)
    {
        obsTrace_ = trace;
        obsWindowK_ = lastK;
    }

    /** Trace window captured at the first mismatch (empty when ok). */
    const std::vector<obs::TraceEvent> &divergenceWindow() const
    {
        return divWindow_;
    }

  private:
    void onCommit(HartId hart, const CommitProbe &probe);
    void onStore(const StoreProbe &probe);
    void fail(HartId hart, const std::string &why);

    /** Record the structured report for the first failure only. */
    void report(DivergenceReport::Kind kind, HartId hart,
                const CommitProbe &probe, const char *rule,
                unsigned reg = 0, uint64_t dutVal = 0, uint64_t refVal = 0);

    xs::Soc &dut_;
    RuleConfig rules_;
    std::vector<std::unique_ptr<iss::System>> refSys_;
    std::vector<std::unique_ptr<nemu::Nemu>> refs_;
    GlobalMemory globalMem_;
    PermissionScoreboard scoreboard_;
    DiffStats stats_;
    DivergenceReport div_;
    std::vector<std::string> failures_;
    std::function<void(const std::string &)> onMismatch_;
    obs::TraceBuffer *obsTrace_ = nullptr;
    size_t obsWindowK_ = 256;
    std::vector<obs::TraceEvent> divWindow_;
    std::map<Addr, unsigned> forcedAtPc_; ///< repeat guard, cold path

    static constexpr size_t TRACE_DEPTH = 64;
    std::vector<CommitProbe> trace_ = std::vector<CommitProbe>(TRACE_DEPTH);
    size_t traceHead_ = 0;
    size_t traceCount_ = 0;
};

} // namespace minjie::difftest

#endif // MINJIE_DIFFTEST_DIFFTEST_H
