/**
 * @file
 * DRAV information probes (paper Section III-B3).
 *
 * Probes are the designer-authored extraction points embedded in the
 * DUT. As in the paper, each probe describes ONE instruction / one
 * event; a superscalar DUT instantiates the commit probe several times
 * per cycle, and the number of instantiations implicitly conveys the
 * commit width to the verification side.
 *
 * This header has no dependencies on either the DUT (xiangshan) or the
 * checkers (difftest) so both sides can share it.
 */

#ifndef MINJIE_DIFFTEST_PROBES_H
#define MINJIE_DIFFTEST_PROBES_H

#include <cstdint>

#include "common/types.h"

namespace minjie::difftest {

/** One committed instruction, as observed at the DUT's commit stage. */
struct CommitProbe
{
    HartId hart = 0;
    Addr pc = 0;
    uint32_t inst = 0;      ///< raw encoding
    uint8_t rd = 0;
    bool rdWritten = false; ///< integer rd updated
    bool fpWritten = false; ///< fp rd updated
    uint64_t rdValue = 0;

    bool isLoad = false;
    bool isStore = false;
    bool skip = false;      ///< MMIO access: REF must not replay it
    Addr memVaddr = 0;
    Addr memPaddr = 0;
    uint64_t memData = 0;
    uint8_t memSize = 0;

    bool trap = false;      ///< this instruction raised an exception
    uint64_t trapCause = 0;
    bool interrupt = false; ///< DUT took an asynchronous interrupt here
    bool scFailed = false;  ///< store-conditional failure (diff-rule)
};

/** A store leaving the store queue into the cache hierarchy (enters the
 *  Global Memory; Section III-B2b). */
struct StoreProbe
{
    HartId hart = 0;
    Addr paddr = 0;
    uint64_t data = 0;
    uint8_t size = 0;
};

/** CSR state snapshot compared by the machine-CSR diff-rules. */
struct CsrProbe
{
    HartId hart = 0;
    uint64_t mstatus = 0;
    uint64_t mepc = 0;
    uint64_t mcause = 0;
    uint64_t mtval = 0;
    uint64_t mtvec = 0;
    uint64_t mscratch = 0;
    uint64_t mie = 0;
    uint64_t mip = 0;
    uint64_t medeleg = 0;
    uint64_t mideleg = 0;
    uint64_t sepc = 0;
    uint64_t scause = 0;
    uint64_t stval = 0;
    uint64_t stvec = 0;
    uint64_t sscratch = 0;
    uint64_t satp = 0;
    uint64_t mcycle = 0;
    uint64_t minstret = 0;
    uint8_t fflags = 0;
    uint8_t frm = 0;
    uint8_t priv = 3;

    // Identification / counter CSRs covered by additional rules.
    uint64_t misa = 0;
    uint64_t mvendorid = 0;
    uint64_t marchid = 0;
    uint64_t mimpid = 0;
    uint64_t mhartid = 0;
    uint64_t mcounteren = 0;
    uint64_t scounteren = 0;
    uint64_t pmpcfg0 = 0;
    uint64_t pmpaddr0 = 0;
    uint64_t timeVal = 0;
    uint64_t hpmcounter[16] = {};
    uint64_t hpmevent[16] = {};
};

} // namespace minjie::difftest

#endif // MINJIE_DIFFTEST_PROBES_H
