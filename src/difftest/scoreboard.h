/**
 * @file
 * Cache-coherence permission scoreboard (paper Section III-B2b):
 * tracks the permission each L1 data cache holds for every block, fed
 * by the hierarchy's TileLink-flavoured transaction log, and flags
 * grants that violate the single-writer/multiple-reader invariant.
 */

#ifndef MINJIE_DIFFTEST_SCOREBOARD_H
#define MINJIE_DIFFTEST_SCOREBOARD_H

#include <map>
#include <string>
#include <vector>

#include "uarch/cache.h"

namespace minjie::difftest {

class PermissionScoreboard
{
  public:
    enum class Perm : uint8_t { None, Shared, Exclusive };

    /** Feed one observed transaction. */
    void onTransaction(const uarch::Transaction &txn);

    bool ok() const { return violations_.empty(); }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    uint64_t transactionsChecked() const { return checked_; }

  private:
    /** Permission of cache @p name on @p line as last granted. */
    Perm permOf(Addr line, const char *name) const;

    void violation(const char *what, const uarch::Transaction &txn);

    // line -> (cache name -> permission). Keyed by the per-instance
    // cache name, not the object pointer: iteration feeds violation
    // reports, so the order must not depend on allocation addresses
    // (lint MJ-DET-003/004).
    std::map<Addr, std::map<std::string, Perm, std::less<>>> perms_;
    std::vector<std::string> violations_;
    uint64_t checked_ = 0;
};

} // namespace minjie::difftest

#endif // MINJIE_DIFFTEST_SCOREBOARD_H
