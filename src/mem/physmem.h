/**
 * @file
 * Sparse physical memory backing the simulated DRAM.
 */

#ifndef MINJIE_MEM_PHYSMEM_H
#define MINJIE_MEM_PHYSMEM_H

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace minjie::mem {

/**
 * Byte-addressable sparse memory. Pages are allocated on first touch so
 * a 16 GB guest-physical space costs only what the workload dirties —
 * this is also what makes LightSSS fork()/COW snapshots cheap.
 */
class PhysMem
{
  public:
    static constexpr unsigned PAGE_SHIFT = 12;
    static constexpr Addr PAGE_SIZE = 1ULL << PAGE_SHIFT;
    static constexpr Addr PAGE_MASK = PAGE_SIZE - 1;

    /** @param base  lowest valid address  @param size  bytes of DRAM */
    PhysMem(Addr base, uint64_t size) : base_(base), size_(size) {}

    Addr base() const { return base_; }
    uint64_t size() const { return size_; }

    bool
    contains(Addr addr, unsigned bytes = 1) const
    {
        return addr >= base_ && addr + bytes <= base_ + size_;
    }

    /**
     * Read @p size bytes (1/2/4/8) at @p addr into @p data.
     * Misaligned and page-crossing accesses are handled bytewise.
     * @return false if the range is outside DRAM.
     */
    bool
    read(Addr addr, unsigned size, uint64_t &data)
    {
        if (!contains(addr, size))
            return false;
        uint8_t *p = pagePtr(addr);
        if (((addr & PAGE_MASK) + size) <= PAGE_SIZE) {
            data = 0;
            std::memcpy(&data, p, size);
        } else {
            data = 0;
            for (unsigned i = 0; i < size; ++i)
                data |= static_cast<uint64_t>(*bytePtr(addr + i)) << (8 * i);
        }
        return true;
    }

    /** Write @p size bytes of @p data at @p addr. */
    bool
    write(Addr addr, unsigned size, uint64_t data)
    {
        if (!contains(addr, size))
            return false;
        uint8_t *p = pagePtr(addr);
        if (((addr & PAGE_MASK) + size) <= PAGE_SIZE) {
            std::memcpy(p, &data, size);
        } else {
            for (unsigned i = 0; i < size; ++i)
                *bytePtr(addr + i) = static_cast<uint8_t>(data >> (8 * i));
        }
        return true;
    }

    /** Bulk copy-in used by the program loader. */
    void
    load(Addr addr, const void *src, size_t len)
    {
        const auto *s = static_cast<const uint8_t *>(src);
        for (size_t i = 0; i < len; ++i)
            *bytePtr(addr + i) = s[i];
    }

    /**
     * Host pointer to the page containing @p addr (allocating it). Valid
     * until the next snapshot/restore; used by the fast interpreters.
     */
    uint8_t *pagePtr(Addr addr) { return bytePtr(addr); }

    /**
     * Stable host base pointer of the whole 4K page containing @p addr,
     * or nullptr when that page is not fully inside DRAM. The pointer
     * stays valid until clear() — check epoch() across snapshot/restore
     * boundaries before reusing cached pointers.
     */
    uint8_t *
    hostPage(Addr addr)
    {
        Addr pageBase = addr & ~PAGE_MASK;
        if (!contains(pageBase, PAGE_SIZE))
            return nullptr;
        return bytePtr(pageBase);
    }

    /** Bumped by clear(); invalidates every previously returned page
     *  pointer (hostPage/pagePtr). */
    uint64_t epoch() const { return epoch_; }

    /** Number of pages currently allocated. */
    size_t allocatedPages() const { return pages_.size(); }

    /**
     * Visit every allocated page in ascending address order (for
     * checkpoints and SSS snapshots). Sorted visitation is load-bearing:
     * consumers serialize the pages, and two runs that touched the same
     * pages in different orders must produce identical images.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        std::vector<Addr> pfns;
        pfns.reserve(pages_.size());
        // lint:allow MJ-DET2-001 keys are sorted below before any visit
        for (const auto &[pfn, page] : pages_)
            pfns.push_back(pfn);
        std::sort(pfns.begin(), pfns.end());
        for (Addr pfn : pfns)
            fn(pfn << PAGE_SHIFT, pages_.find(pfn)->second->data());
    }

    /** Drop all contents (used when restoring a checkpoint). */
    void
    clear()
    {
        pages_.clear();
        lastPfn_ = ~0ULL;
        lastPage_ = nullptr;
        ++epoch_;
    }

  private:
    using Page = std::vector<uint8_t>;

    uint8_t *
    bytePtr(Addr addr)
    {
        Addr pfn = addr >> PAGE_SHIFT;
        if (pfn != lastPfn_) {
            auto &slot = pages_[pfn];
            if (!slot)
                slot = std::make_unique<Page>(PAGE_SIZE, 0);
            lastPfn_ = pfn;
            lastPage_ = slot->data();
        }
        return lastPage_ + (addr & PAGE_MASK);
    }

    Addr base_;
    uint64_t size_;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    Addr lastPfn_ = ~0ULL;
    uint8_t *lastPage_ = nullptr;
    uint64_t epoch_ = 0;
};

} // namespace minjie::mem

#endif // MINJIE_MEM_PHYSMEM_H
