/**
 * @file
 * Memory-mapped device interface and the standard device set (UART,
 * CLINT, simulation controller).
 */

#ifndef MINJIE_MEM_DEVICE_H
#define MINJIE_MEM_DEVICE_H

#include <string>

#include "common/types.h"

namespace minjie::mem {

/** A memory-mapped IO device occupying [base, base+size). */
class Device
{
  public:
    Device(Addr base, uint64_t size) : base_(base), size_(size) {}
    virtual ~Device() = default;

    Addr base() const { return base_; }
    uint64_t size() const { return size_; }
    bool
    contains(Addr addr) const
    {
        return addr >= base_ && addr < base_ + size_;
    }

    /** Read @p size bytes at device-relative @p offset. */
    virtual bool read(Addr offset, unsigned size, uint64_t &data) = 0;
    /** Write @p size bytes at device-relative @p offset. */
    virtual bool write(Addr offset, unsigned size, uint64_t data) = 0;

  private:
    Addr base_;
    uint64_t size_;
};

/** Write-only console: bytes written to offset 0 append to a buffer. */
class Uart : public Device
{
  public:
    static constexpr Addr DEFAULT_BASE = 0x10000000;

    explicit Uart(Addr base = DEFAULT_BASE) : Device(base, 0x1000) {}

    bool
    read(Addr offset, unsigned size, uint64_t &data) override
    {
        data = offset == 5 ? 0x20 : 0; // LSR: TX empty
        return true;
    }

    bool
    write(Addr offset, unsigned size, uint64_t data) override
    {
        if (offset == 0)
            output_ += static_cast<char>(data & 0xff);
        return true;
    }

    const std::string &output() const { return output_; }
    void clearOutput() { output_.clear(); }

  private:
    std::string output_;
};

/** Core-local interruptor: msip / mtimecmp / mtime. */
class Clint : public Device
{
  public:
    static constexpr Addr DEFAULT_BASE = 0x02000000;
    static constexpr unsigned MAX_HARTS = 8;

    explicit Clint(Addr base = DEFAULT_BASE) : Device(base, 0x10000)
    {
        for (auto &v : mtimecmp_)
            v = ~0ULL;
        for (auto &v : msip_)
            v = 0;
    }

    bool
    read(Addr offset, unsigned size, uint64_t &data) override
    {
        data = 0;
        if (offset < 4 * MAX_HARTS) {
            data = msip_[offset / 4];
        } else if (offset >= 0x4000 && offset < 0x4000 + 8 * MAX_HARTS) {
            data = mtimecmp_[(offset - 0x4000) / 8];
        } else if (offset == 0xbff8) {
            data = mtime_;
        }
        return true;
    }

    bool
    write(Addr offset, unsigned size, uint64_t data) override
    {
        if (offset < 4 * MAX_HARTS) {
            msip_[offset / 4] = data & 1;
        } else if (offset >= 0x4000 && offset < 0x4000 + 8 * MAX_HARTS) {
            mtimecmp_[(offset - 0x4000) / 8] = data;
        } else if (offset == 0xbff8) {
            mtime_ = data;
        }
        return true;
    }

    /** Advance the timebase by @p ticks. */
    void tick(uint64_t ticks = 1) { mtime_ += ticks; }

    uint64_t mtime() const { return mtime_; }
    bool softwareIrq(HartId hart) const { return msip_[hart] != 0; }
    bool timerIrq(HartId hart) const { return mtime_ >= mtimecmp_[hart]; }

  private:
    uint64_t mtime_ = 0;
    uint64_t mtimecmp_[MAX_HARTS];
    uint32_t msip_[MAX_HARTS];
};

/**
 * Simulation controller (HTIF-like): a store of (code<<1)|1 to offset 0
 * halts the simulation with exit status @c code; a store to offset 8
 * prints a character.
 */
class SimCtrl : public Device
{
  public:
    static constexpr Addr DEFAULT_BASE = 0x40000000;

    explicit SimCtrl(Addr base = DEFAULT_BASE) : Device(base, 0x1000) {}

    bool
    read(Addr offset, unsigned size, uint64_t &data) override
    {
        data = 0;
        return true;
    }

    bool
    write(Addr offset, unsigned size, uint64_t data) override
    {
        if (offset == 0 && (data & 1)) {
            exited_ = true;
            exitCode_ = data >> 1;
        } else if (offset == 8) {
            output_ += static_cast<char>(data & 0xff);
        }
        return true;
    }

    bool exited() const { return exited_; }
    uint64_t exitCode() const { return exitCode_; }
    const std::string &output() const { return output_; }
    void
    reset()
    {
        exited_ = false;
        exitCode_ = 0;
        output_.clear();
    }

  private:
    bool exited_ = false;
    uint64_t exitCode_ = 0;
    std::string output_;
};

} // namespace minjie::mem

#endif // MINJIE_MEM_DEVICE_H
