/**
 * @file
 * The system bus: routes physical accesses to DRAM or MMIO devices.
 */

#ifndef MINJIE_MEM_BUS_H
#define MINJIE_MEM_BUS_H

#include <vector>

#include "mem/device.h"
#include "mem/physmem.h"

namespace minjie::mem {

/** Abstract physical-memory port used by the MMU and the executors. */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    /** @return false on access fault. */
    virtual bool read(Addr paddr, unsigned size, uint64_t &data) = 0;
    virtual bool write(Addr paddr, unsigned size, uint64_t data) = 0;
    /** True when @p paddr hits a device rather than DRAM. */
    virtual bool isMmio(Addr paddr) const = 0;
};

/**
 * Routes accesses by address: DRAM window to PhysMem, device windows to
 * their devices. Devices are borrowed, not owned, so a SoC can keep
 * typed references to them.
 */
class Bus : public MemPort
{
  public:
    explicit Bus(PhysMem &dram) : dram_(dram) {}

    void addDevice(Device *dev) { devices_.push_back(dev); }

    bool
    read(Addr paddr, unsigned size, uint64_t &data) override
    {
        if (dram_.contains(paddr, size))
            return dram_.read(paddr, size, data);
        if (Device *d = find(paddr))
            return d->read(paddr - d->base(), size, data);
        return false;
    }

    bool
    write(Addr paddr, unsigned size, uint64_t data) override
    {
        if (dram_.contains(paddr, size))
            return dram_.write(paddr, size, data);
        if (Device *d = find(paddr))
            return d->write(paddr - d->base(), size, data);
        return false;
    }

    bool
    isMmio(Addr paddr) const override
    {
        return !dram_.contains(paddr) && findConst(paddr) != nullptr;
    }

    PhysMem &dram() { return dram_; }

  private:
    Device *
    find(Addr paddr)
    {
        for (auto *d : devices_)
            if (d->contains(paddr))
                return d;
        return nullptr;
    }

    const Device *
    findConst(Addr paddr) const
    {
        for (auto *d : devices_)
            if (d->contains(paddr))
                return d;
        return nullptr;
    }

    PhysMem &dram_;
    std::vector<Device *> devices_;
};

} // namespace minjie::mem

#endif // MINJIE_MEM_BUS_H
