#include "checkpoint/simpoint.h"

#include <algorithm>
#include <cmath>

namespace minjie::checkpoint {

namespace {

/** Deterministic +-1 projection coefficient for (pc, dim). */
double
projCoeff(Addr pc, unsigned dim, uint64_t seed)
{
    uint64_t h = pc * 0x9e3779b97f4a7c15ULL + dim * 0xbf58476d1ce4e5b9ULL +
                 seed;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 29;
    return (h & 1) ? 1.0 : -1.0;
}

double
dist2(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        double t = a[i] - b[i];
        d += t * t;
    }
    return d;
}

} // namespace

SimPoints
simpoint(const std::vector<Bbv> &bbvs, unsigned maxK, unsigned dims,
         uint64_t seed)
{
    SimPoints sp;
    if (bbvs.empty())
        return sp;

    unsigned k = std::min<unsigned>(maxK,
                                    static_cast<unsigned>(bbvs.size()));

    // Normalize each BBV to unit L1 mass and randomly project.
    std::vector<std::vector<double>> pts(bbvs.size(),
                                         std::vector<double>(dims, 0.0));
    for (size_t i = 0; i < bbvs.size(); ++i) {
        double total = 0;
        for (const auto &[pc, count] : bbvs[i])
            total += static_cast<double>(count);
        if (total == 0)
            total = 1;
        for (const auto &[pc, count] : bbvs[i]) {
            double w = static_cast<double>(count) / total;
            for (unsigned d = 0; d < dims; ++d)
                pts[i][d] += w * projCoeff(pc, d, seed);
        }
    }

    // k-means++-style seeding (deterministic): first centroid is the
    // first interval; each next is the point farthest from its nearest
    // chosen centroid.
    std::vector<std::vector<double>> centroids;
    centroids.push_back(pts[0]);
    while (centroids.size() < k) {
        size_t best = 0;
        double bestDist = -1;
        for (size_t i = 0; i < pts.size(); ++i) {
            double nearest = 1e300;
            for (const auto &c : centroids)
                nearest = std::min(nearest, dist2(pts[i], c));
            if (nearest > bestDist) {
                bestDist = nearest;
                best = i;
            }
        }
        centroids.push_back(pts[best]);
    }

    // Lloyd iterations.
    std::vector<unsigned> assign(pts.size(), 0);
    for (unsigned iter = 0; iter < 30; ++iter) {
        bool changed = false;
        for (size_t i = 0; i < pts.size(); ++i) {
            unsigned best = 0;
            double bestDist = 1e300;
            for (unsigned c = 0; c < centroids.size(); ++c) {
                double d = dist2(pts[i], centroids[c]);
                if (d < bestDist) {
                    bestDist = d;
                    best = c;
                }
            }
            if (assign[i] != best) {
                assign[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;
        for (unsigned c = 0; c < centroids.size(); ++c) {
            std::vector<double> mean(dims, 0.0);
            unsigned n = 0;
            for (size_t i = 0; i < pts.size(); ++i) {
                if (assign[i] == c) {
                    for (unsigned d = 0; d < dims; ++d)
                        mean[d] += pts[i][d];
                    ++n;
                }
            }
            if (n) {
                for (auto &m : mean)
                    m /= n;
                centroids[c] = std::move(mean);
            }
        }
    }

    // Representative = interval closest to its centroid.
    sp.assignment = assign;
    for (unsigned c = 0; c < centroids.size(); ++c) {
        long best = -1;
        double bestDist = 1e300;
        unsigned size = 0;
        for (size_t i = 0; i < pts.size(); ++i) {
            if (assign[i] != c)
                continue;
            ++size;
            double d = dist2(pts[i], centroids[c]);
            if (d < bestDist) {
                bestDist = d;
                best = static_cast<long>(i);
            }
        }
        if (best >= 0) {
            sp.intervals.push_back(static_cast<unsigned>(best));
            sp.weights.push_back(static_cast<double>(size) /
                                 static_cast<double>(pts.size()));
        }
    }
    return sp;
}

} // namespace minjie::checkpoint
