/**
 * @file
 * RISC-V architectural checkpoint format (paper Figure 9).
 *
 * A checkpoint captures exactly the architectural state plus the memory
 * image, and restores with no dependence on the RISC-V debug mode —
 * the property the paper highlights against Dromajo's format, enabling
 * early-stage processors to run checkpoints. Our restore path writes
 * the state directly into a simulator; a hardware bring-up path would
 * lower the same content to the basic RV64 privileged instructions of
 * Figure 9 (csrw/li sequences + memory preload).
 */

#ifndef MINJIE_CHECKPOINT_CHECKPOINT_H
#define MINJIE_CHECKPOINT_CHECKPOINT_H

#include <cstdint>
#include <vector>

#include "iss/arch_state.h"
#include "mem/physmem.h"

namespace minjie::checkpoint {

/** One serialized checkpoint. */
struct Checkpoint
{
    std::vector<uint8_t> bytes;

    /** Instructions executed before this checkpoint was taken. */
    uint64_t instCount = 0;
    /** SimPoint weight (fraction of execution it represents). */
    double weight = 1.0;

    bool valid() const { return !bytes.empty(); }
};

/**
 * Byte size of the fixed architectural-state header that starts every
 * checkpoint image (magic through the CSR block, memory excluded).
 * The sampled-simulation pack store splits images at this boundary so
 * N checkpoints of one program can share one deduplicated page pool.
 */
size_t archHeaderBytes();

/** Append just the architectural-state header for @p state to @p v. */
void serializeArch(std::vector<uint8_t> &v, const iss::ArchState &state);

/**
 * Decode an architectural-state header at @p data into @p state.
 * @return false when @p len is short or the magic does not match.
 */
bool restoreArch(const uint8_t *data, size_t len, iss::ArchState &state);

/** Serialize @p state and every allocated page of @p mem. All-zero
 *  pages are elided from the image; restore() re-creates them as
 *  zero-fill on first touch. */
Checkpoint serialize(const iss::ArchState &state,
                     const mem::PhysMem &mem, uint64_t instCount = 0);

/**
 * Restore @p cp into @p state / @p mem.
 * @return false on a malformed image.
 */
bool restore(const Checkpoint &cp, iss::ArchState &state,
             mem::PhysMem &mem);

} // namespace minjie::checkpoint

#endif // MINJIE_CHECKPOINT_CHECKPOINT_H
