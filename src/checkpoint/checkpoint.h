/**
 * @file
 * RISC-V architectural checkpoint format (paper Figure 9).
 *
 * A checkpoint captures exactly the architectural state plus the memory
 * image, and restores with no dependence on the RISC-V debug mode —
 * the property the paper highlights against Dromajo's format, enabling
 * early-stage processors to run checkpoints. Our restore path writes
 * the state directly into a simulator; a hardware bring-up path would
 * lower the same content to the basic RV64 privileged instructions of
 * Figure 9 (csrw/li sequences + memory preload).
 */

#ifndef MINJIE_CHECKPOINT_CHECKPOINT_H
#define MINJIE_CHECKPOINT_CHECKPOINT_H

#include <cstdint>
#include <vector>

#include "iss/arch_state.h"
#include "mem/physmem.h"

namespace minjie::checkpoint {

/** One serialized checkpoint. */
struct Checkpoint
{
    std::vector<uint8_t> bytes;

    /** Instructions executed before this checkpoint was taken. */
    uint64_t instCount = 0;
    /** SimPoint weight (fraction of execution it represents). */
    double weight = 1.0;

    bool valid() const { return !bytes.empty(); }
};

/** Serialize @p state and every allocated page of @p mem. */
Checkpoint serialize(const iss::ArchState &state,
                     const mem::PhysMem &mem, uint64_t instCount = 0);

/**
 * Restore @p cp into @p state / @p mem.
 * @return false on a malformed image.
 */
bool restore(const Checkpoint &cp, iss::ArchState &state,
             mem::PhysMem &mem);

} // namespace minjie::checkpoint

#endif // MINJIE_CHECKPOINT_CHECKPOINT_H
