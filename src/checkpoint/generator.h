/**
 * @file
 * Checkpoint generation flow (paper Section III-D3): profile a program
 * with NEMU collecting BBVs, select representative intervals with
 * SimPoint, then re-run at full interpreter speed and serialize a
 * checkpoint at each selected interval boundary.
 */

#ifndef MINJIE_CHECKPOINT_GENERATOR_H
#define MINJIE_CHECKPOINT_GENERATOR_H

#include "checkpoint/checkpoint.h"
#include "checkpoint/simpoint.h"
#include "workload/programs.h"

namespace minjie::checkpoint {

struct GenResult
{
    std::vector<Checkpoint> checkpoints; ///< weights filled in
    SimPoints simpoints;
    InstCount totalInsts = 0;
    double profileMips = 0;  ///< pass-1 (BBV profiling) speed
    double generateMips = 0; ///< pass-2 (fast re-run) speed
};

/**
 * Generate SimPoint checkpoints for @p prog.
 *
 * @param intervalInsts instructions per SimPoint interval
 * @param maxK          maximum number of checkpoints
 * @param maxInsts      profiling budget (safety bound)
 */
GenResult generateCheckpoints(const workload::Program &prog,
                              InstCount intervalInsts, unsigned maxK,
                              InstCount maxInsts = 200'000'000);

} // namespace minjie::checkpoint

#endif // MINJIE_CHECKPOINT_GENERATOR_H
