#include "checkpoint/checkpoint.h"

#include <cstring>

namespace minjie::checkpoint {

namespace {

constexpr uint64_t MAGIC = 0x4d4a434b50543031ULL; // "MJCKPT01"

/** u64 fields in the arch header: magic, pc, x[32], f[32], priv,
 *  resValid, resAddr, instret, csr count, 26 CSRs. */
constexpr size_t N_CSRS = 26;
constexpr size_t ARCH_FIELDS = 1 + 1 + 32 + 32 + 1 + 1 + 1 + 1 + 1 + N_CSRS;

void
put64(std::vector<uint8_t> &v, uint64_t x)
{
    size_t off = v.size();
    v.resize(off + 8);
    std::memcpy(v.data() + off, &x, 8);
}

uint64_t
get64(const uint8_t *data, size_t len, size_t &off)
{
    uint64_t x = 0;
    if (off + 8 <= len) {
        std::memcpy(&x, data + off, 8);
        off += 8;
    }
    return x;
}

uint64_t
get64(const std::vector<uint8_t> &v, size_t &off)
{
    return get64(v.data(), v.size(), off);
}

/** All-zero scan, 8 bytes at a time (pages are 8-aligned). */
bool
pageIsZero(const uint8_t *data)
{
    uint64_t acc = 0;
    for (unsigned i = 0; i < mem::PhysMem::PAGE_SIZE; i += 8) {
        uint64_t w;
        std::memcpy(&w, data + i, 8);
        acc |= w;
        if (acc)
            return false;
    }
    return true;
}

} // namespace

size_t
archHeaderBytes()
{
    return ARCH_FIELDS * 8;
}

void
serializeArch(std::vector<uint8_t> &v, const iss::ArchState &st)
{
    put64(v, MAGIC);
    put64(v, st.pc);
    for (auto r : st.x)
        put64(v, r);
    for (auto r : st.f)
        put64(v, r);
    put64(v, static_cast<uint64_t>(st.priv));
    put64(v, st.resValid ? 1 : 0);
    put64(v, st.resAddr);
    put64(v, st.instret);

    // CSR block (Figure 9: the restorable machine/supervisor subset).
    const auto &c = st.csr;
    const uint64_t csrs[] = {
        c.mstatus, c.misa, c.medeleg, c.mideleg, c.mie, c.mtvec,
        c.mcounteren, c.mscratch, c.mepc, c.mcause, c.mtval, c.mip,
        c.mcycle, c.minstret, c.mhartid, c.stvec, c.scounteren,
        c.sscratch, c.sepc, c.scause, c.stval, c.satp, c.pmpcfg0,
        c.pmpaddr0, static_cast<uint64_t>(c.fflags),
        static_cast<uint64_t>(c.frm),
    };
    static_assert(std::size(csrs) == N_CSRS);
    put64(v, std::size(csrs));
    for (auto x : csrs)
        put64(v, x);
}

bool
restoreArch(const uint8_t *data, size_t len, iss::ArchState &st)
{
    size_t off = 0;
    if (len < archHeaderBytes() || get64(data, len, off) != MAGIC)
        return false;

    st.pc = get64(data, len, off);
    for (auto &r : st.x)
        r = get64(data, len, off);
    for (auto &r : st.f)
        r = get64(data, len, off);
    st.priv = static_cast<isa::Priv>(get64(data, len, off));
    st.resValid = get64(data, len, off) != 0;
    st.resAddr = get64(data, len, off);
    st.instret = get64(data, len, off);

    if (get64(data, len, off) != N_CSRS)
        return false;
    auto &c = st.csr;
    uint64_t *dst[] = {
        &c.mstatus, &c.misa, &c.medeleg, &c.mideleg, &c.mie, &c.mtvec,
        &c.mcounteren, &c.mscratch, &c.mepc, &c.mcause, &c.mtval, &c.mip,
        &c.mcycle, &c.minstret, &c.mhartid, &c.stvec, &c.scounteren,
        &c.sscratch, &c.sepc, &c.scause, &c.stval, &c.satp, &c.pmpcfg0,
        &c.pmpaddr0,
    };
    for (auto *d : dst)
        *d = get64(data, len, off);
    c.fflags = static_cast<uint8_t>(get64(data, len, off));
    c.frm = static_cast<uint8_t>(get64(data, len, off));
    return true;
}

Checkpoint
serialize(const iss::ArchState &st, const mem::PhysMem &mem,
          uint64_t instCount)
{
    Checkpoint cp;
    cp.instCount = instCount;
    auto &v = cp.bytes;

    serializeArch(v, st);

    // Memory image: {count, {base, 4096 bytes}*}, zero pages elided —
    // restore() clears the target memory first, so an elided page
    // reads back as zeros without ever being materialized.
    size_t countOff = v.size();
    put64(v, 0);
    uint64_t pages = 0;
    mem.forEachPage([&](Addr base, const uint8_t *data) {
        if (pageIsZero(data))
            return;
        put64(v, base);
        size_t off = v.size();
        v.resize(off + mem::PhysMem::PAGE_SIZE);
        std::memcpy(v.data() + off, data, mem::PhysMem::PAGE_SIZE);
        ++pages;
    });
    std::memcpy(v.data() + countOff, &pages, 8);
    return cp;
}

bool
restore(const Checkpoint &cp, iss::ArchState &st, mem::PhysMem &mem)
{
    const auto &v = cp.bytes;
    if (!restoreArch(v.data(), v.size(), st))
        return false;
    size_t off = archHeaderBytes();

    mem.clear();
    uint64_t pages = get64(v, off);
    for (uint64_t p = 0; p < pages; ++p) {
        Addr base = get64(v, off);
        if (off + mem::PhysMem::PAGE_SIZE > v.size())
            return false;
        mem.load(base, v.data() + off, mem::PhysMem::PAGE_SIZE);
        off += mem::PhysMem::PAGE_SIZE;
    }
    return true;
}

} // namespace minjie::checkpoint
