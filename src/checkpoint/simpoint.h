/**
 * @file
 * SimPoint-style interval selection (paper Section III-D3).
 *
 * Basic-block vectors are collected inside the interpreter (one counter
 * per basic block per interval — "it is easy to compute the Basic Block
 * Vector in NEMU"), projected to a low dimension, and clustered with
 * k-means. Each cluster's most central interval becomes a checkpoint
 * whose weight is the cluster's share of execution.
 */

#ifndef MINJIE_CHECKPOINT_SIMPOINT_H
#define MINJIE_CHECKPOINT_SIMPOINT_H

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace minjie::checkpoint {

/**
 * One interval's basic-block execution profile. A sorted map: the
 * random projection accumulates floating-point terms in iteration
 * order, so an unordered container would make the clustering depend
 * on the hash-table layout of the host's standard library.
 */
using Bbv = std::map<Addr, uint64_t>;

/** Collects BBVs from an interpreter block hook. */
class BbvCollector
{
  public:
    /** @param intervalInsts instructions per interval */
    explicit BbvCollector(InstCount intervalInsts = 1'000'000)
        : intervalInsts_(intervalInsts)
    {
    }

    /** Feed one executed basic block (hook into Nemu::setBlockHook). */
    void
    onBlock(Addr startPc, uint32_t length)
    {
        current_[startPc] += length;
        executed_ += length;
        if (executed_ >= intervalInsts_) {
            intervals_.push_back(std::move(current_));
            current_.clear();
            executed_ = 0;
        }
    }

    /** Close the trailing partial interval (call at end of profiling).
     *  Idempotent: a second call finds no pending work and changes
     *  nothing, and the instruction count never carries over into a
     *  resumed profile. */
    void
    finish()
    {
        if (!current_.empty())
            intervals_.push_back(std::move(current_));
        current_.clear();
        executed_ = 0;
    }

    const std::vector<Bbv> &intervals() const { return intervals_; }
    InstCount intervalInsts() const { return intervalInsts_; }

  private:
    InstCount intervalInsts_;
    Bbv current_;
    InstCount executed_ = 0;
    std::vector<Bbv> intervals_;
};

/** Result of clustering: the selected intervals and their weights. */
struct SimPoints
{
    std::vector<unsigned> intervals; ///< representative interval indices
    std::vector<double> weights;     ///< cluster sizes / total
    std::vector<unsigned> assignment;///< interval -> cluster
};

/**
 * Cluster @p bbvs into at most @p maxK phases.
 *
 * @param dims   random-projection dimensionality (SimPoint uses 15)
 * @param seed   deterministic seed for projection and seeding
 */
SimPoints simpoint(const std::vector<Bbv> &bbvs, unsigned maxK,
                   unsigned dims = 15, uint64_t seed = 1);

/** Weighted-CPI performance estimate over measured checkpoints. */
inline double
weightedCpi(const std::vector<double> &cpis,
            const std::vector<double> &weights)
{
    double sum = 0, wsum = 0;
    for (size_t i = 0; i < cpis.size(); ++i) {
        sum += cpis[i] * weights[i];
        wsum += weights[i];
    }
    return wsum > 0 ? sum / wsum : 0.0;
}

} // namespace minjie::checkpoint

#endif // MINJIE_CHECKPOINT_SIMPOINT_H
