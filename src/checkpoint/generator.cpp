#include "checkpoint/generator.h"

#include <algorithm>

#include "common/clock.h"
#include "iss/system.h"
#include "nemu/nemu.h"

namespace minjie::checkpoint {

GenResult
generateCheckpoints(const workload::Program &prog,
                    InstCount intervalInsts, unsigned maxK,
                    InstCount maxInsts)
{
    GenResult out;

    // ---- pass 1: profile with BBV collection (step-path NEMU) ----
    BbvCollector bbv(intervalInsts);
    {
        iss::System sys(256);
        prog.loadInto(sys.dram);
        nemu::Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
        nemu.setHaltFn([&] { return sys.simctrl.exited(); });
        nemu.setBlockHook(
            [&](Addr pc, uint32_t len) { bbv.onBlock(pc, len); });

        Stopwatch sw;
        auto r = nemu.Interp::run(maxInsts);
        bbv.finish();
        out.totalInsts = r.executed;
        double sec = sw.elapsedSec();
        out.profileMips =
            sec > 0 ? static_cast<double>(r.executed) / sec / 1e6 : 0;
    }

    // ---- SimPoint clustering ----
    out.simpoints = simpoint(bbv.intervals(), maxK);

    // Short-program edge: a run that retires fewer than intervalInsts
    // instructions after its last control transfer (or none at all)
    // reports no complete BBV interval, and clustering nothing would
    // return an empty GenResult. Fall back to a single whole-run
    // checkpoint of weight 1.0 — interval 0 makes pass 2 snapshot the
    // initial state, so restoring it replays the entire execution.
    if (out.simpoints.intervals.empty()) {
        out.simpoints.intervals = {0};
        out.simpoints.weights = {1.0};
        out.simpoints.assignment = {0};
    }

    // ---- pass 2: re-run fast and snapshot at interval boundaries ----
    std::vector<std::pair<InstCount, size_t>> boundaries;
    for (size_t i = 0; i < out.simpoints.intervals.size(); ++i) {
        boundaries.push_back(
            {static_cast<InstCount>(out.simpoints.intervals[i]) *
                 intervalInsts,
             i});
    }
    std::sort(boundaries.begin(), boundaries.end());

    out.checkpoints.resize(out.simpoints.intervals.size());
    iss::System sys(256);
    prog.loadInto(sys.dram);
    nemu::Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });

    Stopwatch sw;
    InstCount executed = 0;
    for (const auto &[target, cpIdx] : boundaries) {
        if (target > executed) {
            auto r = nemu.run(target - executed);
            executed += r.executed;
        }
        Checkpoint cp = serialize(nemu.state(), sys.dram, executed);
        cp.weight = out.simpoints.weights[cpIdx];
        out.checkpoints[cpIdx] = std::move(cp);
    }
    double sec = sw.elapsedSec();
    out.generateMips =
        sec > 0 ? static_cast<double>(executed) / sec / 1e6 : 0;
    return out;
}

} // namespace minjie::checkpoint
