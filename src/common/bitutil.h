/**
 * @file
 * Bit-manipulation helpers used across the decoder, MMU, predictors and
 * cache models.
 */

#ifndef MINJIE_COMMON_BITUTIL_H
#define MINJIE_COMMON_BITUTIL_H

#include <bit>
#include <cassert>
#include <cstdint>

namespace minjie {

/** Extract bits [hi:lo] of @p val (inclusive, hi >= lo). */
constexpr uint64_t
bits(uint64_t val, unsigned hi, unsigned lo)
{
    assert(hi >= lo && hi < 64);
    uint64_t mask = (hi - lo == 63) ? ~0ULL : ((1ULL << (hi - lo + 1)) - 1);
    return (val >> lo) & mask;
}

/** Extract a single bit of @p val. */
constexpr uint64_t
bit(uint64_t val, unsigned pos)
{
    return (val >> pos) & 1;
}

/** Sign-extend the low @p width bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned width)
{
    assert(width > 0 && width <= 64);
    if (width == 64)
        return static_cast<int64_t>(val);
    uint64_t sign = 1ULL << (width - 1);
    return static_cast<int64_t>(((val & ((1ULL << width) - 1)) ^ sign) - sign);
}

/** Zero-extend the low @p width bits of @p val. */
constexpr uint64_t
zext(uint64_t val, unsigned width)
{
    assert(width > 0 && width <= 64);
    if (width == 64)
        return val;
    return val & ((1ULL << width) - 1);
}

/** True if @p val is a power of two (and nonzero). */
constexpr bool
isPow2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2i(uint64_t val)
{
    assert(isPow2(val));
    return static_cast<unsigned>(std::countr_zero(val));
}

/** Align @p addr down to a multiple of the power-of-two @p align. */
constexpr uint64_t
alignDown(uint64_t addr, uint64_t align)
{
    assert(isPow2(align));
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of the power-of-two @p align. */
constexpr uint64_t
alignUp(uint64_t addr, uint64_t align)
{
    assert(isPow2(align));
    return (addr + align - 1) & ~(align - 1);
}

/** Insert bits [hi:lo] of @p field into @p base. */
constexpr uint64_t
insertBits(uint64_t base, unsigned hi, unsigned lo, uint64_t field)
{
    assert(hi >= lo && hi < 64);
    uint64_t mask = (hi - lo == 63) ? ~0ULL : ((1ULL << (hi - lo + 1)) - 1);
    return (base & ~(mask << lo)) | ((field & mask) << lo);
}

} // namespace minjie

#endif // MINJIE_COMMON_BITUTIL_H
