/**
 * @file
 * Wall-clock stopwatch used by the LightSSS / interpreter benchmarks.
 */

#ifndef MINJIE_COMMON_CLOCK_H
#define MINJIE_COMMON_CLOCK_H

#include <cstdint>

namespace minjie {

/** Monotonic wall-clock stopwatch with microsecond resolution. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart timing from now. */
    void reset();

    /** Microseconds elapsed since the last reset. */
    uint64_t elapsedUs() const;

    /** Seconds elapsed since the last reset. */
    double elapsedSec() const;

  private:
    uint64_t startNs_ = 0;
};

/** Current monotonic time in nanoseconds. */
uint64_t monotonicNs();

} // namespace minjie

#endif // MINJIE_COMMON_CLOCK_H
