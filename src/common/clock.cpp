#include "common/clock.h"

#include <ctime>

namespace minjie {

uint64_t
monotonicNs()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
           static_cast<uint64_t>(ts.tv_nsec);
}

void
Stopwatch::reset()
{
    startNs_ = monotonicNs();
}

uint64_t
Stopwatch::elapsedUs() const
{
    return (monotonicNs() - startNs_) / 1000;
}

double
Stopwatch::elapsedSec() const
{
    return static_cast<double>(monotonicNs() - startNs_) * 1e-9;
}

} // namespace minjie
