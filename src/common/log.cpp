#include "common/log.h"

#include <cstdlib>

namespace minjie {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::setOutputFile(const std::string &path)
{
    if (out_ && out_ != stderr)
        std::fclose(out_);
    out_ = path.empty() ? nullptr : std::fopen(path.c_str(), "w");
}

void
Logger::log(LogLevel level, const char *fmt, ...)
{
    if (level < level_)
        return;
    static const char *names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    FILE *out = out_ ? out_ : stderr;
    std::fprintf(out, "[%s] ", names[static_cast<int>(level)]);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
    std::fputc('\n', out);
    ++lines_;
}

void
panic(const char *fmt, ...)
{
    std::fprintf(stderr, "panic: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::exit(1);
}

} // namespace minjie
