#include "common/log.h"

#include <cstdlib>

namespace minjie {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::setOutputFile(const std::string &path)
{
    if (out_ && out_ != stderr)
        std::fclose(out_);
    out_ = path.empty() ? nullptr : std::fopen(path.c_str(), "w");
}

void
Logger::log(LogLevel level, const char *fmt, ...)
{
    if (level < level_)
        return;
    static const char *names[] = {"DEBUG", "INFO", "WARN", "ERROR"};

    // Format the whole line first and emit it with ONE stdio call:
    // concurrent campaign workers then interleave whole lines, never
    // fragments (stdio locks per call, not per line).
    char body[960];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(body, sizeof(body), fmt, args);
    va_end(args);

    FILE *out = out_ ? out_ : stderr;
    std::fprintf(out, "[%s] %s\n", names[static_cast<int>(level)], body);
    // stderr is unbuffered; a file sink is not. Flush it so no bytes
    // pend across a LightSSS fork(), where they would be written by
    // both the parent and the snapshot child (lint MJ-FRK-003).
    if (out != stderr)
        std::fflush(out);
    lines_.fetch_add(1, std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    std::fprintf(stderr, "panic: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::exit(1);
}

} // namespace minjie
