/**
 * @file
 * Runtime defaults for sanitized builds (MINJIE_SANITIZE=...), tuned
 * for the fork()-based LightSSS snapshot scheme:
 *
 *  - TSan aborts a multi-threaded process that forks unless told
 *    otherwise; LightSSS snapshots do exactly that (the campaign pool
 *    may be alive around the snapshotter), so die_after_fork=0. The
 *    snapshot child itself is single-threaded and exits via _exit().
 *  - ASan leak checking runs from atexit handlers; snapshot children
 *    leave through _exit() (LightSSS::finishReplay), so leaks are
 *    reported exactly once, by the parent. abort_on_error makes a
 *    report kill the test instead of just logging.
 *  - UBSan prints the stack for every report and halts: a UB report
 *    in tier-1 is a failure, not a log line.
 *
 * The *_default_options hooks are weak symbols the sanitizer runtimes
 * look up at startup; defining them beats wiring ASAN_OPTIONS through
 * every ctest/CI invocation, and keeps the policy next to the code it
 * protects. The file compiles to nothing in unsanitized builds.
 */

#if defined(__has_feature)
#define MJ_HAS_FEATURE(x) __has_feature(x)
#else
#define MJ_HAS_FEATURE(x) 0
#endif

#if defined(__SANITIZE_ADDRESS__) || MJ_HAS_FEATURE(address_sanitizer)
extern "C" const char *
__asan_default_options()
{
    return "abort_on_error=1:"
           "detect_leaks=1:"
           "check_initialization_order=1:"
           "strict_init_order=1";
}
#endif

#if defined(__SANITIZE_THREAD__) || MJ_HAS_FEATURE(thread_sanitizer)
extern "C" const char *
__tsan_default_options()
{
    // die_after_fork=0 is what makes LightSSS runnable under TSan.
    return "die_after_fork=0:"
           "halt_on_error=1:"
           "second_deadlock_stack=1";
}
#endif

// UBSan defines no feature macro; hook it whenever any sanitizer
// build is plausible. An unused weak hook is harmless.
extern "C" const char *
__ubsan_default_options()
{
    return "print_stacktrace=1";
}
