/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic behaviour in the repository (random program generation,
 * workload data, fuzz co-simulation) flows through Xoshiro so runs are
 * reproducible from a seed.
 */

#ifndef MINJIE_COMMON_RNG_H
#define MINJIE_COMMON_RNG_H

#include <cstdint>

namespace minjie {

/** xoshiro256** by Blackman & Vigna; small, fast, seedable. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x2022'0714'd00d'f00dULL) { reseed(seed); }

    void
    reseed(uint64_t seed)
    {
        // splitmix64 expansion of the seed into the full state.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    uint64_t below(uint64_t bound) { return next() % bound; }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability @p percent / 100. */
    bool chance(unsigned percent) { return below(100) < percent; }

    double real01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  private:
    uint64_t state_[4];
};

} // namespace minjie

#endif // MINJIE_COMMON_RNG_H
