/**
 * @file
 * Minimal JSON writer for machine-readable reports (campaign metrics,
 * divergence records). No external dependencies; emits compact JSON
 * with correct string escaping and comma placement.
 */

#ifndef MINJIE_COMMON_JSONW_H
#define MINJIE_COMMON_JSONW_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace minjie {

/**
 * Streaming JSON writer. Usage:
 *
 *   JsonWriter jw;
 *   jw.beginObject();
 *   jw.key("jobs").value(42);
 *   jw.key("buckets").beginArray();
 *   ...
 *   jw.endArray();
 *   jw.endObject();
 *   std::string text = jw.str();
 */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        sep();
        out_ += '{';
        stack_.push_back(false);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        out_ += '}';
        stack_.pop_back();
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        sep();
        out_ += '[';
        stack_.push_back(false);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        out_ += ']';
        stack_.pop_back();
        return *this;
    }

    JsonWriter &
    key(const std::string &name)
    {
        sep();
        quote(name);
        out_ += ':';
        pendingKey_ = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        sep();
        quote(v);
        return *this;
    }

    JsonWriter &value(const char *v) { return value(std::string(v)); }

    JsonWriter &
    value(uint64_t v)
    {
        sep();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        out_ += buf;
        return *this;
    }

    JsonWriter &value(int v) { return value(static_cast<uint64_t>(v)); }
    JsonWriter &value(unsigned v) { return value(static_cast<uint64_t>(v)); }

    JsonWriter &
    value(double v)
    {
        sep();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out_ += buf;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        sep();
        out_ += v ? "true" : "false";
        return *this;
    }

    /** Hex-formatted integer rendered as a JSON string ("0x..."). */
    JsonWriter &
    hex(uint64_t v)
    {
        sep();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                      static_cast<unsigned long long>(v));
        out_ += buf;
        return *this;
    }

    const std::string &str() const { return out_; }

  private:
    /** Emit a separating comma when needed and mark the container used. */
    void
    sep()
    {
        if (pendingKey_) {
            pendingKey_ = false;
            return;
        }
        if (!stack_.empty()) {
            if (stack_.back())
                out_ += ',';
            stack_.back() = true;
        }
    }

    void
    quote(const std::string &s)
    {
        out_ += '"';
        for (char c : s) {
            switch (c) {
              case '"': out_ += "\\\""; break;
              case '\\': out_ += "\\\\"; break;
              case '\n': out_ += "\\n"; break;
              case '\t': out_ += "\\t"; break;
              case '\r': out_ += "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    std::string out_;
    std::vector<bool> stack_; ///< per-container "has emitted an element"
    bool pendingKey_ = false;
};

} // namespace minjie

#endif // MINJIE_COMMON_JSONW_H
