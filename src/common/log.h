/**
 * @file
 * Minimal leveled logging.
 *
 * Debug-mode RTL simulation in the paper enables waveform/log output at a
 * large performance cost; our analogue is the Logger debug level, which
 * LightSSS replay turns on when reproducing a failure window.
 */

#ifndef MINJIE_COMMON_LOG_H
#define MINJIE_COMMON_LOG_H

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace minjie {

/** Severity levels, lowest to highest. */
enum class LogLevel { Debug, Info, Warn, Error, Off };

/**
 * Process-wide logger. Debug output is what "debug mode" means for the
 * software simulator: when enabled, per-cycle/per-commit trace lines are
 * emitted, which measurably slows simulation (cf. paper Section II-D).
 */
class Logger
{
  public:
    static Logger &instance();

    void setLevel(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }
    bool debugEnabled() const { return level_ <= LogLevel::Debug; }

    /** Redirect output to a file (empty path restores stderr). */
    void setOutputFile(const std::string &path);

    void log(LogLevel level, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    /** Number of log lines emitted (used by tests). */
    uint64_t
    linesEmitted() const
    {
        return lines_.load(std::memory_order_relaxed);
    }

  private:
    Logger() = default;
    LogLevel level_ = LogLevel::Warn;
    FILE *out_ = nullptr;
    // Atomic: campaign worker threads log through the one instance.
    std::atomic<uint64_t> lines_{0};
};

#define MJ_DEBUG(...) \
    do { \
        auto &mj_logger = ::minjie::Logger::instance(); \
        if (mj_logger.debugEnabled()) \
            mj_logger.log(::minjie::LogLevel::Debug, __VA_ARGS__); \
    } while (0)

#define MJ_INFO(...)  ::minjie::Logger::instance().log(::minjie::LogLevel::Info, __VA_ARGS__)
#define MJ_WARN(...)  ::minjie::Logger::instance().log(::minjie::LogLevel::Warn, __VA_ARGS__)
#define MJ_ERROR(...) ::minjie::Logger::instance().log(::minjie::LogLevel::Error, __VA_ARGS__)

/** Abort with a message: simulator-internal invariant violation. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: user/configuration error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace minjie

#endif // MINJIE_COMMON_LOG_H
