/**
 * @file
 * Fundamental scalar type aliases shared by every module.
 */

#ifndef MINJIE_COMMON_TYPES_H
#define MINJIE_COMMON_TYPES_H

#include <cstdint>
#include <cstddef>

namespace minjie {

/** Guest physical / virtual address. */
using Addr = uint64_t;

/** Simulated cycle count. */
using Cycle = uint64_t;

/** Retired-instruction count. */
using InstCount = uint64_t;

/** Hardware thread (core) identifier. */
using HartId = uint32_t;

/** A 64-bit architectural register value. */
using RegVal = uint64_t;

} // namespace minjie

#endif // MINJIE_COMMON_TYPES_H
