#include "campaign/shrink.h"

#include <algorithm>

namespace minjie::campaign {

using workload::Chunk;
using workload::ShrinkableProgram;

namespace {

/** @p sp with only the chunks whose indices are in @p keep. */
ShrinkableProgram
withChunks(const ShrinkableProgram &sp, const std::vector<size_t> &keep)
{
    ShrinkableProgram out = sp;
    out.chunks.clear();
    for (size_t i : keep)
        out.chunks.push_back(sp.chunks[i]);
    return out;
}

} // namespace

ShrinkResult
shrinkProgram(const ShrinkableProgram &orig, const std::string &wantSig,
              const SignatureFn &sig, unsigned maxEvals)
{
    ShrinkResult res;

    std::vector<size_t> kept(orig.chunks.size());
    for (size_t i = 0; i < kept.size(); ++i)
        kept[i] = i;

    auto tryKeep = [&](const std::vector<size_t> &cand) {
        ++res.evals;
        return sig(withChunks(orig, cand).assemble()) == wantSig;
    };

    // Classic ddmin: partition the kept set into n subsets and try
    // removing each subset (keeping its complement); on success restart
    // at coarse granularity, otherwise refine until subsets are single
    // chunks and none can be removed.
    size_t n = 2;
    while (kept.size() >= 1 && res.evals < maxEvals) {
        n = std::min(n, std::max<size_t>(kept.size(), 1));
        bool removed = false;
        size_t chunkLen = (kept.size() + n - 1) / std::max<size_t>(n, 1);
        if (chunkLen == 0)
            break;
        for (size_t start = 0;
             start < kept.size() && res.evals < maxEvals;
             start += chunkLen) {
            size_t stop = std::min(start + chunkLen, kept.size());
            std::vector<size_t> cand;
            cand.reserve(kept.size() - (stop - start));
            cand.insert(cand.end(), kept.begin(),
                        kept.begin() + static_cast<long>(start));
            cand.insert(cand.end(),
                        kept.begin() + static_cast<long>(stop),
                        kept.end());
            if (tryKeep(cand)) {
                kept = std::move(cand);
                n = std::max<size_t>(2, n - 1);
                removed = true;
                break;
            }
        }
        if (!removed) {
            if (n >= kept.size()) {
                res.converged = true;
                break;
            }
            n = std::min(kept.size(), n * 2);
        }
    }

    res.program = withChunks(orig, kept);
    return res;
}

} // namespace minjie::campaign
