#include "campaign/lockstep.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "isa/decode.h"
#include "isa/disasm.h"
#include "iss/interp.h"
#include "iss/system.h"
#include "nemu/nemu.h"

namespace minjie::campaign {

using namespace minjie::iss;

const char *
engineName(Engine e)
{
    switch (e) {
      case Engine::Spike: return "spike";
      case Engine::Dromajo: return "dromajo";
      case Engine::Tci: return "tci";
      case Engine::Nemu: return "nemu";
    }
    return "?";
}

bool
parseEngine(const std::string &name, Engine &out)
{
    if (name == "spike")
        out = Engine::Spike;
    else if (name == "dromajo")
        out = Engine::Dromajo;
    else if (name == "tci")
        out = Engine::Tci;
    else if (name == "nemu")
        out = Engine::Nemu;
    else
        return false;
    return true;
}

namespace {

/** One engine with its private system (DRAM, bus, devices). */
struct EngineBox
{
    System sys{32};
    std::unique_ptr<Interp> interp;
};

std::unique_ptr<EngineBox>
makeEngine(Engine kind, const workload::Program &prog,
           const LockstepOptions &opts)
{
    auto box = std::make_unique<EngineBox>();
    prog.loadInto(box->sys.dram);
    switch (kind) {
      case Engine::Spike:
        box->interp =
            std::make_unique<SpikeInterp>(box->sys.bus, 0, prog.entry);
        break;
      case Engine::Dromajo:
        box->interp =
            std::make_unique<DromajoInterp>(box->sys.bus, 0, prog.entry);
        break;
      case Engine::Tci:
        box->interp =
            std::make_unique<TciInterp>(box->sys.bus, 0, prog.entry);
        break;
      case Engine::Nemu: {
        auto n = std::make_unique<nemu::Nemu>(
            box->sys.bus, box->sys.dram, 0, prog.entry);
        n->setChainingEnabled(opts.nemuChain);
        n->setFastPathEnabled(opts.nemuFastPath);
        box->interp = std::move(n);
        break;
      }
    }
    return box;
}

/** Post-step corruption of the injected side's destination register. */
void
applyBug(const BugInject &bug, ArchState &st, const isa::DecodedInst &di)
{
    if (di.op != bug.op || di.rd == 0)
        return;
    if (isa::writesFpRd(di.op)) {
        st.f[di.rd] ^= bug.xorMask;
        return;
    }
    if (isa::isStore(di.op) || isa::isCondBranch(di.op))
        return;
    st.setX(di.rd, st.x[di.rd] ^ bug.xorMask);
}

/** Compare every loaded segment's memory image across the two systems. */
bool
compareMemory(EngineBox &a, EngineBox &b, const workload::Program &prog,
              Divergence &div)
{
    for (const auto &seg : prog.segments) {
        for (size_t i = 0; i < seg.bytes.size(); ++i) {
            uint64_t va = 0, vb = 0;
            a.sys.dram.read(seg.base + i, 1, va);
            b.sys.dram.read(seg.base + i, 1, vb);
            if (va != vb) {
                div.kind = Divergence::Kind::Memory;
                div.reg = static_cast<unsigned>(i);
                div.pc = seg.base + i; // diverging address, not a pc
                div.valA = va;
                div.valB = vb;
                return false;
            }
        }
    }
    return true;
}

} // namespace

std::string
Divergence::signature() const
{
    const char *kindName = "none";
    switch (kind) {
      case Kind::XReg: kindName = "xreg"; break;
      case Kind::FReg: kindName = "freg"; break;
      case Kind::Fflags: kindName = "fflags"; break;
      case Kind::Pc: kindName = "pc"; break;
      case Kind::Memory: kindName = "mem"; break;
      case Kind::Timeout: kindName = "timeout"; break;
      case Kind::None: break;
    }
    if (kind == Kind::Memory || kind == Kind::Timeout ||
        kind == Kind::None)
        return kindName;
    return std::string(kindName) + ":" + isa::opClassName(op) + ":" +
           isa::opName(op);
}

std::string
Divergence::describe() const
{
    if (!diverged())
        return "no divergence";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s at step %llu pc 0x%llx (%s) reg %u: A=0x%llx"
                  " B=0x%llx",
                  signature().c_str(),
                  static_cast<unsigned long long>(step),
                  static_cast<unsigned long long>(pc), isa::opName(op),
                  reg, static_cast<unsigned long long>(valA),
                  static_cast<unsigned long long>(valB));
    return buf;
}

LockstepResult
runLockstep(Engine a, Engine b, const workload::Program &prog,
            uint64_t maxSteps, const BugInject *bug,
            const LockstepOptions &opts)
{
    auto ea = makeEngine(a, prog, opts);
    auto eb = makeEngine(b, prog, opts);
    LockstepResult res;

    for (uint64_t step = 0; step < maxSteps; ++step) {
        if (ea->sys.simctrl.exited() && eb->sys.simctrl.exited()) {
            res.exited = true;
            res.div.step = step;
            compareMemory(*ea, *eb, prog, res.div);
            return res;
        }

        ArchState &sa = ea->interp->state();
        ArchState &sb = eb->interp->state();
        Addr pc = sa.pc;
        uint64_t raw = 0;
        ea->sys.dram.read(pc, 4, raw);
        isa::DecodedInst di = isa::decode(static_cast<uint32_t>(raw));

        // run(1) is virtual: NEMU executes through its chained
        // threaded-code engine, the baseline engines through step().
        iss::RunResult ra = ea->interp->run(1);
        iss::RunResult rb = eb->interp->run(1);
        ++res.steps;

        if (bug && bug->enabled &&
            !(bug->side == 0 ? ra : rb).trapped)
            applyBug(*bug, bug->side == 0 ? sa : sb, di);

        Divergence &d = res.div;
        d.step = step;
        d.pc = pc;
        d.op = di.op;
        if (sa.pc != sb.pc) {
            d.kind = Divergence::Kind::Pc;
            d.valA = sa.pc;
            d.valB = sb.pc;
            return res;
        }
        if (std::memcmp(sa.x, sb.x, sizeof(sa.x)) != 0) {
            d.kind = Divergence::Kind::XReg;
            for (unsigned r = 0; r < 32; ++r) {
                if (sa.x[r] != sb.x[r]) {
                    d.reg = r;
                    d.valA = sa.x[r];
                    d.valB = sb.x[r];
                    break;
                }
            }
            return res;
        }
        if (std::memcmp(sa.f, sb.f, sizeof(sa.f)) != 0) {
            d.kind = Divergence::Kind::FReg;
            for (unsigned r = 0; r < 32; ++r) {
                if (sa.f[r] != sb.f[r]) {
                    d.reg = r;
                    d.valA = sa.f[r];
                    d.valB = sb.f[r];
                    break;
                }
            }
            return res;
        }
        if (sa.csr.fflags != sb.csr.fflags) {
            d.kind = Divergence::Kind::Fflags;
            d.valA = sa.csr.fflags;
            d.valB = sb.csr.fflags;
            return res;
        }
    }

    res.div.kind = Divergence::Kind::Timeout;
    res.div.step = res.steps;
    return res;
}

} // namespace minjie::campaign
