#include "campaign/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace minjie::campaign {

namespace fs = std::filesystem;

std::string
CorpusEntry::serialize() const
{
    char buf[96];
    std::string out = "minjie-corpus v1\n";
    std::snprintf(buf, sizeof(buf), "seed 0x%llx\n",
                  static_cast<unsigned long long>(seed));
    out += buf;
    out += std::string("pair ") + engineName(engineA) + " " +
           engineName(engineB) + "\n";
    out += "signature " + signature + "\n";
    if (!note.empty())
        out += "note " + note + "\n";
    out += "program\n";
    out += program.serialize();
    return out;
}

bool
CorpusEntry::deserialize(const std::string &text, CorpusEntry &out)
{
    out = CorpusEntry{};
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "minjie-corpus v1")
        return false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line == "program") {
            std::string rest((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
            return workload::ShrinkableProgram::deserialize(rest,
                                                            out.program);
        }
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "seed") {
            ls >> std::hex >> out.seed;
        } else if (tag == "pair") {
            std::string a, b;
            ls >> a >> b;
            if (!parseEngine(a, out.engineA) ||
                !parseEngine(b, out.engineB))
                return false;
        } else if (tag == "signature") {
            ls >> out.signature;
        } else if (tag == "note") {
            std::getline(ls, out.note);
            if (!out.note.empty() && out.note.front() == ' ')
                out.note.erase(out.note.begin());
        } else {
            return false;
        }
    }
    return false; // never reached the embedded program
}

std::string
CorpusEntry::fileName() const
{
    std::string slug = signature.empty() ? "clean" : signature;
    for (char &c : slug)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "__seed%llx.mjc",
                  static_cast<unsigned long long>(seed));
    return slug + buf;
}

std::string
writeCorpusFile(const std::string &dir, const CorpusEntry &entry)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    std::string path = (fs::path(dir) / entry.fileName()).string();
    std::ofstream f(path);
    if (!f)
        return "";
    f << entry.serialize();
    return f.good() ? path : "";
}

bool
readCorpusFile(const std::string &path, CorpusEntry &out)
{
    std::ifstream f(path);
    if (!f)
        return false;
    std::stringstream ss;
    ss << f.rdbuf();
    return CorpusEntry::deserialize(ss.str(), out);
}

std::vector<std::string>
listCorpusFiles(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (auto it = fs::directory_iterator(dir, ec);
         !ec && it != fs::directory_iterator(); ++it) {
        if (it->path().extension() == ".mjc")
            out.push_back(it->path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace minjie::campaign
