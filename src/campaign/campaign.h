/**
 * @file
 * Parallel fuzz co-simulation campaign engine (paper Section III-D's
 * "run as many simulation instances as the host allows" applied to
 * reference-model cross-checking).
 *
 * A campaign is a seed range [seedBase, seedBase + seedCount). Every
 * seed deterministically derives one job — a random program plus the
 * checker that runs it (an engine-pair lockstep run, or a full
 * NEMU-vs-XiangShan DiffTest co-simulation) — so the campaign outcome
 * is a pure function of the seed range: worker count only changes how
 * fast the range drains, never which failures are found or how they
 * bucket. Failures are grouped by first-divergence signature, one
 * representative per bucket is delta-debugged to a minimal reproducer,
 * and minimized failures can be persisted into the regression corpus.
 */

#ifndef MINJIE_CAMPAIGN_CAMPAIGN_H
#define MINJIE_CAMPAIGN_CAMPAIGN_H

#include <string>
#include <utility>
#include <vector>

#include "campaign/lockstep.h"
#include "obs/counter.h"
#include "workload/shrinkable.h"
#include "xiangshan/config.h"

namespace minjie::campaign {

/** Campaign parameters. Everything a seed maps to lives here. */
struct CampaignConfig
{
    uint64_t seedBase = 1;
    uint64_t seedCount = 100;
    unsigned workers = 1;       ///< worker threads (jobs in flight)
    unsigned nInsts = 300;      ///< body instructions per random program
    uint64_t maxSteps = 100'000; ///< lockstep instruction budget per job
    uint64_t difftestMaxCycles = 2'000'000;

    unsigned fpPct = 25;        ///< % of seeds generating fp programs
    unsigned rvcPct = 30;       ///< % of seeds mixing in RVC sequences
    unsigned difftestPct = 0;   ///< % of seeds run as DUT-vs-REF DiffTest

    /** Engine pairs cycled through by seed (fp seeds avoid Nemu, whose
     *  host-fp backend is cross-validated separately). */
    std::vector<std::pair<Engine, Engine>> pairs = {
        {Engine::Spike, Engine::Dromajo},
        {Engine::Spike, Engine::Tci},
        {Engine::Nemu, Engine::Spike},
        {Engine::Nemu, Engine::Tci},
    };

    BugInject bug;              ///< optional self-test corruption
    LockstepOptions lockstep;   ///< NEMU ablation flags for every job
    xs::ModelOpts xsModel;      ///< DUT fast-path ablations (--xs-no-*)
    bool shrinkFailures = true; ///< delta-debug one rep per bucket
    std::string corpusDir;      ///< when set, write minimized failures
    bool perf = false;          ///< collect per-job DUT perf summaries
};

/**
 * DUT performance summary of one DiffTest job (collected under
 * CampaignConfig::perf). A pure function of the seed, so aggregation
 * across workers is invariant.
 */
struct PerfSummary
{
    bool valid = false;
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
    uint64_t tdRetiring = 0;
    uint64_t tdFrontend = 0;
    uint64_t tdBadSpec = 0;
    uint64_t tdBackendMem = 0;
    uint64_t tdBackendCore = 0;
};

/** What one seed runs: derived deterministically by planJob(). */
struct JobPlan
{
    bool difftest = false; ///< NEMU-vs-XiangShan DiffTest job
    Engine a = Engine::Spike;
    Engine b = Engine::Dromajo;
    workload::RandomSpec spec;
};

/** Outcome of one job. */
struct JobResult
{
    uint64_t seed = 0;
    bool failed = false;
    std::string kind;      ///< "spike-vs-tci", "difftest", ...
    std::string signature; ///< bucket key (empty when clean)
    std::string detail;    ///< human-readable first divergence
    uint64_t steps = 0;    ///< instructions checked (per engine)
    double sec = 0;
    unsigned worker = 0;
    PerfSummary perf;      ///< filled for DiffTest jobs under --perf
};

/** Failures grouped by divergence signature. */
struct Bucket
{
    std::string signature;
    std::vector<uint64_t> seeds; ///< ascending
    uint64_t repSeed = 0;        ///< shrunk representative
    unsigned shrunkChunks = 0;
    unsigned shrunkInsts = 0;    ///< body instructions after shrinking
    std::string corpusFile;      ///< written corpus path (may be empty)
    std::string repDetail;
};

struct WorkerStats
{
    uint64_t jobs = 0;
    double busySec = 0;
};

/** Full campaign outcome; toJson() is the machine-readable report. */
struct CampaignReport
{
    uint64_t jobs = 0;
    uint64_t failures = 0;
    double elapsedSec = 0;
    double jobsPerSec = 0;
    double mips = 0; ///< aggregate engine-instructions per second / 1e6
    std::vector<JobResult> results; ///< indexed by seed - seedBase
    std::vector<Bucket> buckets;    ///< ordered by first failing seed
    std::vector<WorkerStats> workers;

    std::string toJson() const;

    /**
     * Merge every per-job PerfSummary into one counter snapshot
     * (keys "dut.cycles", "dut.topdown.retiring", ...). Deterministic
     * and worker-count-invariant: results are iterated in seed order
     * and merge() is a commutative sum, so 1-worker and N-worker runs
     * of the same seed range serialize byte-identically.
     */
    obs::CounterSnapshot perfCounters() const;
};

/** Derive the job for @p seed (pure function of config + seed). */
JobPlan planJob(const CampaignConfig &cfg, uint64_t seed);

/** Run a single job (used by workers, shrinking and tests). */
JobResult runJob(const CampaignConfig &cfg, uint64_t seed);

/** Run the whole campaign with cfg.workers threads. */
CampaignReport runCampaign(const CampaignConfig &cfg);

} // namespace minjie::campaign

#endif // MINJIE_CAMPAIGN_CAMPAIGN_H
