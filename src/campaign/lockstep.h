/**
 * @file
 * Engine-pair lockstep co-simulation: the campaign's unit of work.
 *
 * Two interpreter engines execute the same program one instruction at a
 * time with the full architectural state compared after every step, so
 * a disagreement is caught at the *first* diverging instruction — the
 * information the campaign needs for bucketing and shrinking, and the
 * in-repo analogue of DiffTest commit-level checking applied to pairs
 * of reference models.
 */

#ifndef MINJIE_CAMPAIGN_LOCKSTEP_H
#define MINJIE_CAMPAIGN_LOCKSTEP_H

#include <string>

#include "isa/op.h"
#include "workload/programs.h"

namespace minjie::campaign {

/** The co-simulation engines a campaign can pit against each other. */
enum class Engine { Spike, Dromajo, Tci, Nemu };

const char *engineName(Engine e);

/** Parse an engine name; returns false on unknown names. */
bool parseEngine(const std::string &name, Engine &out);

/**
 * Deliberate semantic corruption of one side of a pair — the campaign's
 * self-test ("testing the tester", paper Section IV-C): after the
 * chosen side executes a matching instruction, its destination register
 * is XORed with @p xorMask. The campaign must catch, bucket and shrink
 * the resulting divergence.
 */
struct BugInject
{
    bool enabled = false;
    int side = 1;            ///< 0 = engine A, 1 = engine B
    isa::Op op = isa::Op::Xor;
    uint64_t xorMask = 1;
};

/** First-divergence record for an engine-pair run. */
struct Divergence
{
    enum class Kind { None, XReg, FReg, Fflags, Pc, Memory, Timeout };

    Kind kind = Kind::None;
    uint64_t step = 0;   ///< instruction index of the divergence
    Addr pc = 0;         ///< pc of the diverging instruction
    isa::Op op = isa::Op::Illegal; ///< decoded op at that pc
    unsigned reg = 0;    ///< diverging register / sandbox byte offset
    uint64_t valA = 0;
    uint64_t valB = 0;

    bool diverged() const { return kind != Kind::None; }

    /**
     * Stable bucket key: kind, opcode class and mnemonic. The pc,
     * register index and values stay out of the key (random programs
     * place the same logical bug at arbitrary pcs/registers) but remain
     * in the record and the JSON report.
     */
    std::string signature() const;

    /** Human-readable one-line description. */
    std::string describe() const;
};

/** Outcome of one lockstep run. */
struct LockstepResult
{
    Divergence div;
    uint64_t steps = 0;  ///< instructions executed per engine
    bool exited = false; ///< both engines reached the SimCtrl exit
};

/**
 * Per-run engine tuning. The NEMU ablation flags mirror
 * `--nemu-no-chain` / `--nemu-no-fastpath`: the campaign exercises the
 * chained fast-path engine by default (divergences there are exactly
 * what co-simulation exists to catch), but either optimization can be
 * switched off to bisect a miscompare.
 */
struct LockstepOptions
{
    bool nemuChain = true;    ///< block chaining + superblocks
    bool nemuFastPath = true; ///< host-pointer TLB + direct-DRAM path
};

/**
 * Run @p prog on engines @p a and @p b in lockstep for at most
 * @p maxSteps instructions, comparing pc, integer/fp registers and
 * fflags after every instruction and the data sandbox at exit.
 *
 * Engines step through the virtual Interp::run(1) so NEMU executes its
 * production threaded-code path (chaining, host TLB) with
 * per-instruction commit granularity.
 */
LockstepResult runLockstep(Engine a, Engine b, const workload::Program &prog,
                           uint64_t maxSteps,
                           const BugInject *bug = nullptr,
                           const LockstepOptions &opts = {});

} // namespace minjie::campaign

#endif // MINJIE_CAMPAIGN_LOCKSTEP_H
