#include "campaign/campaign.h"

#include <atomic>
#include <map>
#include <thread>

#include "campaign/corpus.h"
#include "campaign/shrink.h"
#include "common/clock.h"
#include "common/jsonw.h"
#include "difftest/difftest.h"
#include "xiangshan/config.h"

namespace minjie::campaign {

namespace wl = minjie::workload;

namespace {

/** Seed scrambler so job planning draws are decorrelated from the
 *  program generator draws (both start from the campaign seed). */
constexpr uint64_t PLAN_SALT = 0x9e3779b97f4a7c15ULL;

/** Run @p prog under full DiffTest co-simulation; empty sig == clean. */
std::string
runDiffTestOnce(const wl::Program &prog, uint64_t maxCycles,
                const xs::ModelOpts &model, uint64_t *commits,
                std::string *detail, PerfSummary *perf = nullptr)
{
    xs::CoreConfig cc = xs::CoreConfig::nh();
    cc.model = model;
    xs::Soc soc(cc);
    difftest::DiffTest dt(soc);
    prog.loadInto(soc.system().dram);
    for (const auto &seg : prog.segments)
        dt.loadRefMemory(seg.base, seg.bytes.data(), seg.bytes.size());
    soc.setEntry(prog.entry);
    dt.resetRefs(prog.entry);
    dt.run(maxCycles);
    if (commits)
        *commits = dt.stats().commitsChecked;
    if (perf) {
        const xs::PerfCounters &p = soc.core(0).perf();
        perf->valid = true;
        perf->cycles = p.cycles;
        perf->instrs = p.instrs;
        perf->branches = p.branches;
        perf->branchMispredicts = p.branchMispredicts;
        perf->tdRetiring = p.tdRetiring;
        perf->tdFrontend = p.tdFrontend;
        perf->tdBadSpec = p.tdBadSpec;
        perf->tdBackendMem = p.tdBackendMem;
        perf->tdBackendCore = p.tdBackendCore;
    }
    if (dt.ok())
        return "";
    if (detail)
        *detail = dt.failures().front();
    return dt.divergence().signature();
}

} // namespace

JobPlan
planJob(const CampaignConfig &cfg, uint64_t seed)
{
    Rng r(seed ^ PLAN_SALT);
    JobPlan p;
    p.spec.nInsts = cfg.nInsts;
    p.spec.withFp = r.chance(cfg.fpPct);
    p.spec.withRvc = r.chance(cfg.rvcPct);
    p.difftest = r.chance(cfg.difftestPct);
    if (p.difftest) {
        // DiffTest jobs stay integer-only: the cycle-accurate DUT is
        // orders of magnitude slower, and fp/RVC coverage is carried by
        // the cheap engine-pair jobs.
        p.spec.withFp = false;
        p.spec.withRvc = false;
        return p;
    }
    if (!cfg.pairs.empty()) {
        auto pair = cfg.pairs[r.below(cfg.pairs.size())];
        p.a = pair.first;
        p.b = pair.second;
    }
    if (p.spec.withFp &&
        (p.a == Engine::Nemu || p.b == Engine::Nemu)) {
        // Nemu executes fp on the host FPU; bit-exact fp fuzzing runs
        // on the soft-float engines only.
        p.a = Engine::Spike;
        p.b = Engine::Dromajo;
    }
    return p;
}

JobResult
runJob(const CampaignConfig &cfg, uint64_t seed)
{
    Stopwatch sw;
    JobPlan plan = planJob(cfg, seed);
    Rng rng(seed);
    wl::ShrinkableProgram sp = wl::randomShrinkable(rng, plan.spec);
    wl::Program prog = sp.assemble();

    JobResult jr;
    jr.seed = seed;
    if (plan.difftest) {
        jr.kind = "difftest";
        uint64_t commits = 0;
        std::string detail;
        jr.signature = runDiffTestOnce(prog, cfg.difftestMaxCycles,
                                       cfg.xsModel, &commits, &detail,
                                       cfg.perf ? &jr.perf : nullptr);
        jr.steps = commits;
        jr.failed = !jr.signature.empty();
        jr.detail = detail;
    } else {
        jr.kind = std::string(engineName(plan.a)) + "-vs-" +
                  engineName(plan.b);
        const BugInject *bug = cfg.bug.enabled ? &cfg.bug : nullptr;
        LockstepResult lr = runLockstep(plan.a, plan.b, prog,
                                        cfg.maxSteps, bug, cfg.lockstep);
        jr.steps = lr.steps;
        jr.failed = lr.div.diverged();
        if (jr.failed) {
            jr.signature = lr.div.signature();
            jr.detail = lr.div.describe();
        }
    }
    jr.sec = sw.elapsedSec();
    return jr;
}

CampaignReport
runCampaign(const CampaignConfig &cfg)
{
    CampaignReport rep;
    rep.jobs = cfg.seedCount;
    rep.results.resize(cfg.seedCount);
    rep.workers.resize(std::max(1u, cfg.workers));

    Stopwatch wall;
    std::atomic<uint64_t> next{0};

    auto workerFn = [&](unsigned wid) {
        for (;;) {
            uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cfg.seedCount)
                break;
            JobResult jr = runJob(cfg, cfg.seedBase + i);
            jr.worker = wid;
            rep.workers[wid].busySec += jr.sec;
            ++rep.workers[wid].jobs;
            rep.results[i] = std::move(jr);
        }
    };

    if (cfg.workers <= 1) {
        workerFn(0);
    } else {
        std::vector<std::thread> pool;
        for (unsigned w = 0; w < cfg.workers; ++w)
            pool.emplace_back(workerFn, w);
        for (auto &t : pool)
            t.join();
    }
    rep.elapsedSec = wall.elapsedSec();

    // ---- bucket failures by signature, in seed order ----
    std::map<std::string, size_t> index;
    uint64_t totalSteps = 0;
    for (const auto &jr : rep.results) {
        totalSteps += jr.steps * (jr.kind == "difftest" ? 1 : 2);
        if (!jr.failed)
            continue;
        ++rep.failures;
        auto [it, fresh] =
            index.try_emplace(jr.signature, rep.buckets.size());
        if (fresh) {
            Bucket b;
            b.signature = jr.signature;
            b.repSeed = jr.seed;
            b.repDetail = jr.detail;
            rep.buckets.push_back(std::move(b));
        }
        rep.buckets[it->second].seeds.push_back(jr.seed);
    }

    rep.jobsPerSec =
        rep.elapsedSec > 0 ? static_cast<double>(rep.jobs) / rep.elapsedSec
                           : 0;
    rep.mips = rep.elapsedSec > 0
                   ? static_cast<double>(totalSteps) / rep.elapsedSec / 1e6
                   : 0;

    // ---- shrink one representative per bucket (deterministic:
    // single-threaded, bucket order is first-failing-seed order) ----
    if (cfg.shrinkFailures) {
        for (auto &b : rep.buckets) {
            JobPlan plan = planJob(cfg, b.repSeed);
            Rng rng(b.repSeed);
            wl::ShrinkableProgram sp =
                wl::randomShrinkable(rng, plan.spec);

            SignatureFn sig;
            if (plan.difftest) {
                uint64_t cycles = cfg.difftestMaxCycles;
                xs::ModelOpts model = cfg.xsModel;
                sig = [cycles, model](const wl::Program &p) {
                    return runDiffTestOnce(p, cycles, model, nullptr,
                                           nullptr);
                };
            } else {
                const CampaignConfig *c = &cfg;
                Engine ea = plan.a, eb = plan.b;
                sig = [c, ea, eb](const wl::Program &p) {
                    const BugInject *bug =
                        c->bug.enabled ? &c->bug : nullptr;
                    LockstepResult lr = runLockstep(
                        ea, eb, p, c->maxSteps, bug, c->lockstep);
                    return lr.div.diverged() ? lr.div.signature()
                                             : std::string();
                };
            }

            ShrinkResult sr = shrinkProgram(sp, b.signature, sig);
            b.shrunkChunks =
                static_cast<unsigned>(sr.program.chunks.size());
            b.shrunkInsts = sr.program.bodyInsts();

            if (!cfg.corpusDir.empty()) {
                CorpusEntry entry;
                entry.seed = b.repSeed;
                entry.engineA = plan.a;
                entry.engineB = plan.b;
                entry.signature = b.signature;
                entry.note = "shrunk from campaign seed";
                entry.program = sr.program;
                entry.program.name = "corpus";
                b.corpusFile = writeCorpusFile(cfg.corpusDir, entry);
            }
        }
    }

    return rep;
}

std::string
CampaignReport::toJson() const
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("jobs").value(jobs);
    jw.key("failures").value(failures);
    jw.key("elapsed_sec").value(elapsedSec);
    jw.key("jobs_per_sec").value(jobsPerSec);
    jw.key("mips").value(mips);

    jw.key("buckets").beginArray();
    for (const auto &b : buckets) {
        jw.beginObject();
        jw.key("signature").value(b.signature);
        jw.key("count").value(static_cast<uint64_t>(b.seeds.size()));
        jw.key("rep_seed").value(b.repSeed);
        jw.key("rep_detail").value(b.repDetail);
        jw.key("shrunk_chunks").value(b.shrunkChunks);
        jw.key("shrunk_insts").value(b.shrunkInsts);
        if (!b.corpusFile.empty())
            jw.key("corpus_file").value(b.corpusFile);
        jw.key("seeds").beginArray();
        for (uint64_t s : b.seeds)
            jw.value(s);
        jw.endArray();
        jw.endObject();
    }
    jw.endArray();

    jw.key("workers").beginArray();
    for (const auto &w : workers) {
        jw.beginObject();
        jw.key("jobs").value(w.jobs);
        jw.key("busy_sec").value(w.busySec);
        jw.endObject();
    }
    jw.endArray();

    bool anyPerf = false;
    for (const auto &jr : results)
        anyPerf = anyPerf || jr.perf.valid;
    if (anyPerf) {
        jw.key("perf_jobs").beginArray();
        for (const auto &jr : results) {
            if (!jr.perf.valid)
                continue;
            const PerfSummary &p = jr.perf;
            double ipc = p.cycles ? static_cast<double>(p.instrs) /
                                        static_cast<double>(p.cycles)
                                  : 0.0;
            jw.beginObject();
            jw.key("seed").value(jr.seed);
            jw.key("cycles").value(p.cycles);
            jw.key("instrs").value(p.instrs);
            jw.key("ipc").value(ipc);
            jw.key("branches").value(p.branches);
            jw.key("branch_mispredicts").value(p.branchMispredicts);
            jw.key("td_retiring").value(p.tdRetiring);
            jw.key("td_frontend").value(p.tdFrontend);
            jw.key("td_bad_speculation").value(p.tdBadSpec);
            jw.key("td_backend_memory").value(p.tdBackendMem);
            jw.key("td_backend_core").value(p.tdBackendCore);
            jw.endObject();
        }
        jw.endArray();
        // Aggregate view: the worker-count-invariant merged snapshot.
        obs::CounterSnapshot total = perfCounters();
        jw.key("perf_total").beginObject();
        for (const auto &[k, v] : total.values)
            jw.key(k).value(v);
        jw.endObject();
    }

    jw.key("failing_jobs").beginArray();
    for (const auto &jr : results) {
        if (!jr.failed)
            continue;
        jw.beginObject();
        jw.key("seed").value(jr.seed);
        jw.key("kind").value(jr.kind);
        jw.key("signature").value(jr.signature);
        jw.key("detail").value(jr.detail);
        jw.endObject();
    }
    jw.endArray();

    jw.endObject();
    return jw.str();
}

obs::CounterSnapshot
CampaignReport::perfCounters() const
{
    obs::CounterSnapshot total;
    for (const auto &jr : results) {
        if (!jr.perf.valid)
            continue;
        const PerfSummary &p = jr.perf;
        obs::CounterSnapshot one;
        one.set("dut.jobs", 1);
        one.set("dut.cycles", p.cycles);
        one.set("dut.instrs", p.instrs);
        one.set("dut.branches", p.branches);
        one.set("dut.branch_mispredicts", p.branchMispredicts);
        one.set("dut.topdown.retiring", p.tdRetiring);
        one.set("dut.topdown.frontend", p.tdFrontend);
        one.set("dut.topdown.bad_speculation", p.tdBadSpec);
        one.set("dut.topdown.backend_memory", p.tdBackendMem);
        one.set("dut.topdown.backend_core", p.tdBackendCore);
        total.merge(one);
    }
    return total;
}

} // namespace minjie::campaign
