/**
 * @file
 * Failure shrinker: delta-debugs a failing random program down to a
 * minimal chunk list that still reproduces the same divergence
 * signature. The campaign promotes shrunk failures into the regression
 * corpus, turning every random-found bug into a small standing test.
 */

#ifndef MINJIE_CAMPAIGN_SHRINK_H
#define MINJIE_CAMPAIGN_SHRINK_H

#include <functional>
#include <string>

#include "workload/shrinkable.h"

namespace minjie::campaign {

/**
 * Oracle evaluated on candidate programs: returns the divergence
 * signature the candidate produces, or an empty string when it runs
 * clean. Shrinking preserves the original signature, not just "fails".
 */
using SignatureFn =
    std::function<std::string(const workload::Program &)>;

/** Outcome of a shrink run. */
struct ShrinkResult
{
    workload::ShrinkableProgram program; ///< minimized program
    unsigned evals = 0;    ///< oracle invocations spent
    bool converged = false; ///< no single chunk can be removed anymore
};

/**
 * ddmin over the chunk list of @p orig: repeatedly remove chunk
 * subsets, keeping any candidate whose signature still equals
 * @p wantSig, until no single chunk can be removed or @p maxEvals
 * oracle calls have been spent.
 */
ShrinkResult shrinkProgram(const workload::ShrinkableProgram &orig,
                           const std::string &wantSig,
                           const SignatureFn &sig,
                           unsigned maxEvals = 600);

} // namespace minjie::campaign

#endif // MINJIE_CAMPAIGN_SHRINK_H
