/**
 * @file
 * Regression corpus: minimized failures persisted as replayable text
 * files. A corpus entry records the engine pair, the divergence
 * signature it once reproduced, and the full shrinkable program; ctest
 * replays every entry on each build so a fixed bug stays fixed.
 */

#ifndef MINJIE_CAMPAIGN_CORPUS_H
#define MINJIE_CAMPAIGN_CORPUS_H

#include <string>
#include <vector>

#include "campaign/lockstep.h"
#include "workload/shrinkable.h"

namespace minjie::campaign {

/** One corpus file: header metadata plus the embedded program. */
struct CorpusEntry
{
    uint64_t seed = 0;          ///< campaign seed that found the failure
    Engine engineA = Engine::Spike;
    Engine engineB = Engine::Dromajo;
    std::string signature;      ///< divergence this entry reproduced
    std::string note;           ///< free-form provenance
    workload::ShrinkableProgram program;

    std::string serialize() const;
    static bool deserialize(const std::string &text, CorpusEntry &out);

    /** Filesystem-safe default file name (signature + seed). */
    std::string fileName() const;
};

/** Write @p entry under @p dir; returns the path ("" on failure). */
std::string writeCorpusFile(const std::string &dir,
                            const CorpusEntry &entry);

/** Load one corpus file; returns false on IO/parse failure. */
bool readCorpusFile(const std::string &path, CorpusEntry &out);

/** All *.mjc files under @p dir (sorted; empty when dir is missing). */
std::vector<std::string> listCorpusFiles(const std::string &dir);

} // namespace minjie::campaign

#endif // MINJIE_CAMPAIGN_CORPUS_H
