#include "xiangshan/config.h"

namespace minjie::xs {

using isa::FuType;

namespace {

void
setCommonFus(CoreConfig &c)
{
    c.fuFor(FuType::Alu) = {4, 1, true, 32, 2};
    c.fuFor(FuType::Mul) = {2, 3, true, 16, 1};
    c.fuFor(FuType::Div) = {1, 20, false, 16, 1};
    c.fuFor(FuType::Jmp) = {1, 1, true, 16, 1};
    c.fuFor(FuType::Ldu) = {2, 0, true, 32, 2}; // latency from the D$
    c.fuFor(FuType::Sta) = {2, 1, true, 16, 2};
    c.fuFor(FuType::Std) = {2, 1, true, 16, 2};
    c.fuFor(FuType::Fma) = {4, 5, true, 32, 2}; // cascade FMA, 5 cycles
    c.fuFor(FuType::Fmisc) = {2, 2, true, 16, 1};
    c.fuFor(FuType::Fdiv) = {1, 16, false, 16, 1};
    c.fuFor(FuType::None) = {1, 1, true, 16, 1};
}

} // namespace

CoreConfig
CoreConfig::yqh()
{
    CoreConfig c;
    c.name = "YQH";
    c.ubtbEntries = 32;
    c.btbEntries = 2048;
    c.tageEntries = 16384;
    c.hasIttage = false;
    c.robSize = 192;
    c.lqSize = 64;
    c.sqSize = 48;
    c.intPrf = 160;
    c.fpPrf = 160;
    c.fusion = false;
    c.moveElim = false;
    c.splitStaStd = false; // YQH has a unified ST pipeline
    setCommonFus(c);
    c.fuFor(isa::FuType::Sta) = {1, 1, true, 16, 1};
    c.fuFor(isa::FuType::Std) = {1, 1, true, 16, 1};

    // Memory system: 16KB L1I + 128KB L1+ + 32KB L1D + 1MB inclusive L2.
    c.mem.l1i = {16 * 1024, 4, 1, 64, false, 8};
    c.mem.l1d = {32 * 1024, 8, 2, 64, false, 8};
    c.mem.l1plus = uarch::CacheCfg{128 * 1024, 8, 6, 64, false, 16};
    c.mem.l2 = {1024 * 1024, 8, 14, 64, true, 16};
    c.mem.l2Private = false;
    c.mem.l3.reset();
    c.mem.itlb = {40, 0, 1};
    c.mem.dtlb = {40, 0, 1};
    c.mem.stlb = {4096, 4, 2};
    return c;
}

CoreConfig
CoreConfig::nh()
{
    CoreConfig c;
    c.name = "NH";
    setCommonFus(c);

    // Memory system: 128KB L1s, private non-inclusive 1MB L2,
    // shared non-inclusive 6MB L3.
    c.mem.l1i = {128 * 1024, 8, 1, 64, false, 8};
    c.mem.l1d = {128 * 1024, 8, 2, 64, false, 16};
    c.mem.l1plus.reset();
    c.mem.l2 = {1024 * 1024, 8, 14, 64, false, 32};
    c.mem.l2Private = true;
    c.mem.l3 = uarch::CacheCfg{6 * 1024 * 1024, 6, 30, 64, false, 32};
    c.mem.itlb = {40, 0, 1};
    c.mem.dtlb = {136, 8, 1}; // 128 direct-mapped + 8 fully-assoc
    c.mem.stlb = {2048, 4, 2};
    return c;
}

CoreConfig
CoreConfig::gem5ish()
{
    CoreConfig c = nh();
    c.name = "GEM5ish";
    // The open-source-GEM5-style model: same headline window sizes but
    // a weaker frontend and scheduler, which is where the paper locates
    // the ~30% gap against the real RTL.
    c.ubtbEntries = 32;
    c.hasIttage = false;
    c.mispredictPenalty = 20;
    c.ubtbMissBubble = 4;
    c.fusion = false;
    c.moveElim = false;
    c.fetchWidth = 4;
    for (auto &f : c.fu)
        f.rsIssueWidth = 1;
    c.fuFor(isa::FuType::Ldu).count = 1;
    c.mem.l1d.hitLatency = 4;
    c.mem.l2.hitLatency = 20;
    if (c.mem.l3)
        c.mem.l3->hitLatency = 40;
    return c;
}

} // namespace minjie::xs
