/**
 * @file
 * Micro-architecture configurations of the XIANGSHAN cycle model,
 * including the tape-out parameter sets of Table II (YQH and NH) and a
 * deliberately de-tuned "GEM5-aligned" configuration (Section II-E).
 */

#ifndef MINJIE_XIANGSHAN_CONFIG_H
#define MINJIE_XIANGSHAN_CONFIG_H

#include <string>

#include "isa/op.h"
#include "uarch/hierarchy.h"

namespace minjie::xs {

/** Instruction scheduling policy of the reservation stations. */
enum class IssuePolicy : uint8_t {
    Age,  ///< oldest-ready-first (the baseline in Section IV-D)
    Pubs, ///< prioritize unconfident branch slices [Ando, MICRO'18]
};

/**
 * Simulation-model fast-path knobs. These change how fast the model
 * runs on the host, never what it computes: every combination is
 * cycle-exact against the reference scan-based path (byte-identical
 * PerfCounters and commit-probe streams — enforced by
 * tests/xiangshan/sched_diff_test.cpp). Each knob is independently
 * ablatable via `--xs-no-bitset` / `--xs-no-skip` / `--xs-no-batch`
 * (mirroring the NEMU `--nemu-no-*` flags) so the reference path stays
 * alive as the oracle of the differential rig.
 */
struct ModelOpts
{
    bool bitsetSched = true; ///< bitset scoreboard/wakeup + SoA slots
    bool skipAhead = true;   ///< event-driven idle-cycle skipping
    bool batchCommit = true; ///< batched commit→DiffTest probe delivery
};

/** Per-functional-unit-class execution resources. */
struct FuCfg
{
    unsigned count = 1;       ///< number of units
    unsigned latency = 1;     ///< cycles from issue to result
    bool pipelined = true;    ///< unpipelined units block per op
    unsigned rsSize = 16;     ///< reservation-station entries
    unsigned rsIssueWidth = 1;///< selects per cycle from this RS
};

struct CoreConfig
{
    std::string name = "NH";

    // Frontend.
    unsigned fetchWidth = 8;       ///< instrs per fetch cycle (8*4B)
    unsigned fetchBufferSize = 48;
    unsigned ubtbEntries = 256;
    unsigned btbEntries = 4096;
    unsigned tageEntries = 16384;
    bool hasIttage = true;
    unsigned rasDepth = 32;
    unsigned mispredictPenalty = 11; ///< redirect-to-refill bubble
    unsigned ubtbMissBubble = 2;     ///< BPU override latency
    unsigned trapPenalty = 16;

    // Decode / rename.
    unsigned decodeWidth = 6;
    unsigned commitWidth = 6;
    bool fusion = true;
    bool moveElim = true;

    // Window.
    unsigned robSize = 256;
    unsigned lqSize = 80;
    unsigned sqSize = 64;
    unsigned intPrf = 192;
    unsigned fpPrf = 192;
    unsigned storeBufferSize = 16;
    bool splitStaStd = true; ///< NH decouples store addr/data uops

    // Execution units, indexed by isa::FuType.
    FuCfg fu[static_cast<unsigned>(isa::FuType::None) + 1];

    IssuePolicy policy = IssuePolicy::Age;
    unsigned pubsSliceDepth = 3; ///< producer-chain marking depth

    ModelOpts model; ///< host-speed knobs (cycle-exact, see above)

    // Memory system.
    uarch::MemCfg mem;
    unsigned storeForwardLatency = 4;

    /** Table II, YQH column (28nm, 1.3 GHz generation). */
    static CoreConfig yqh();

    /** Table II, NH column (14nm, 2 GHz generation). */
    static CoreConfig nh();

    /** Roughly-parameter-aligned GEM5-flavoured model: same window
     *  sizes as NH but with the weaker frontend/scheduling detail the
     *  paper blames for the ~30% gap (Section II-E). */
    static CoreConfig gem5ish();

    FuCfg &fuFor(isa::FuType t) { return fu[static_cast<unsigned>(t)]; }
    const FuCfg &
    fuFor(isa::FuType t) const
    {
        return fu[static_cast<unsigned>(t)];
    }
};

} // namespace minjie::xs

#endif // MINJIE_XIANGSHAN_CONFIG_H
