/**
 * @file
 * The XIANGSHAN SoC: N cores sharing one functional system and one
 * coherent memory hierarchy, plus the run loop used by tests, benches
 * and the DiffTest co-simulation driver.
 */

#ifndef MINJIE_XIANGSHAN_SOC_H
#define MINJIE_XIANGSHAN_SOC_H

#include <memory>

#include "xiangshan/core.h"

namespace minjie::xs {

class Soc
{
  public:
    /**
     * @param cfg     per-core configuration (shared by all cores)
     * @param nCores  1 (YQH) or 2 (NH) in the paper's configurations
     * @param dramMb  functional DRAM size
     */
    Soc(const CoreConfig &cfg, unsigned nCores = 1, uint64_t dramMb = 256);

    iss::System &system() { return sys_; }
    uarch::MemHierarchy &mem() { return *mem_; }
    Core &core(unsigned i) { return *cores_[i]; }
    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }

    /** Set every core's reset pc (call before running). */
    void setEntry(Addr entry);

    struct RunResult
    {
        Cycle cycles = 0;
        bool completed = false; ///< all cores drained before the limit
    };

    /**
     * Run until every core drains (oracle halted via SimCtrl and the
     * pipeline is empty) or @p maxCycles elapse.
     */
    RunResult run(Cycle maxCycles);

    /**
     * Run until core 0 has committed @p instrs instructions (or the
     * program ends / @p maxCycles elapse). Used by the checkpoint-based
     * performance estimation flow (warmup + measurement windows).
     */
    RunResult runUntilInstrs(InstCount instrs, Cycle maxCycles);

    /** Aggregate IPC across cores. */
    double ipc() const;

  private:
    iss::System sys_;
    CoreConfig cfg_;
    std::unique_ptr<uarch::MemHierarchy> mem_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> corePtrs_; ///< peer list for LR/SC semantics
};

} // namespace minjie::xs

#endif // MINJIE_XIANGSHAN_SOC_H
