#include "xiangshan/soc.h"

namespace minjie::xs {

Soc::Soc(const CoreConfig &cfg, unsigned nCores, uint64_t dramMb)
    : sys_(dramMb), cfg_(cfg)
{
    mem_ = std::make_unique<uarch::MemHierarchy>(cfg.mem, nCores);
    for (unsigned c = 0; c < nCores; ++c) {
        cores_.push_back(std::make_unique<Core>(cfg, c, sys_, *mem_,
                                                iss::DRAM_BASE));
        cores_.back()->setHaltFn([this] { return sys_.simctrl.exited(); });
    }
    for (auto &core : cores_)
        corePtrs_.push_back(core.get());
    if (nCores > 1)
        for (auto &core : cores_)
            core->setPeers(&corePtrs_);
}

void
Soc::setEntry(Addr entry)
{
    for (unsigned c = 0; c < cores_.size(); ++c)
        cores_[c]->oracleState().reset(entry, c);
}

Soc::RunResult
Soc::run(Cycle maxCycles)
{
    RunResult r;
    while (r.cycles < maxCycles) {
        sys_.clint.tick();
        bool allDone = true;
        Cycle consumed = 1;
        for (auto &core : cores_) {
            if (!core->done()) {
                consumed = std::max(consumed,
                                    core->tick(maxCycles - r.cycles));
                allDone = false;
            }
        }
        r.cycles += consumed;
        // Event-driven skip-ahead: the core fast-forwarded through
        // idle cycles the loop never saw; catch the CLINT up so mtime
        // matches the per-cycle reference path at the next fetch.
        if (consumed > 1)
            sys_.clint.tick(consumed - 1);
        if (allDone) {
            r.completed = true;
            break;
        }
    }
    return r;
}

Soc::RunResult
Soc::runUntilInstrs(InstCount instrs, Cycle maxCycles)
{
    RunResult r;
    while (r.cycles < maxCycles && cores_[0]->perf().instrs < instrs) {
        sys_.clint.tick();
        bool allDone = true;
        Cycle consumed = 1;
        for (auto &core : cores_) {
            if (!core->done()) {
                consumed = std::max(consumed,
                                    core->tick(maxCycles - r.cycles));
                allDone = false;
            }
        }
        r.cycles += consumed;
        if (consumed > 1)
            sys_.clint.tick(consumed - 1);
        if (allDone) {
            r.completed = true;
            break;
        }
    }
    if (cores_[0]->perf().instrs >= instrs)
        r.completed = true;
    return r;
}

double
Soc::ipc() const
{
    InstCount instrs = 0;
    Cycle cycles = 0;
    for (const auto &core : cores_) {
        instrs += core->perf().instrs;
        cycles = std::max(cycles, core->perf().cycles);
    }
    return cycles
               ? static_cast<double>(instrs) / static_cast<double>(cycles)
               : 0.0;
}

} // namespace minjie::xs
