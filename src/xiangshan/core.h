/**
 * @file
 * Execution-driven cycle-level model of the XIANGSHAN superscalar
 * out-of-order core (paper Section IV-A, Figure 10).
 *
 * Structure: a decoupled frontend (uBTB/BTB/TAGE-SC/ITTAGE/RAS feeding
 * an IFU with L1I + ITLB timing), decode with macro-op fusion, rename
 * with move elimination, a ROB + distributed reservation stations with
 * configurable issue policy (AGE or PUBS), split store-address/data
 * uops, bank-interleaved load pipes with store-to-load forwarding, a
 * committed store buffer draining into the coherent cache hierarchy.
 *
 * The model is timing-directed: a functional "oracle" hart executes
 * each instruction at fetch, so branch outcomes, memory addresses and
 * results are known exactly; the pipeline model then accounts for when
 * those events would have happened. Mispredictions stall the fetch
 * stream until the branch's resolution cycle (wrong-path instructions
 * are modeled as bubbles, not fetched). Commit fires the DiffTest
 * probes in program order, making this the DUT of the DRAV flow.
 */

#ifndef MINJIE_XIANGSHAN_CORE_H
#define MINJIE_XIANGSHAN_CORE_H

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "difftest/probes.h"
#include "iss/exec.h"
#include "iss/system.h"
#include "obs/trace.h"
#include "uarch/predictors.h"
#include "xiangshan/config.h"

namespace minjie::xs {

/** Performance counters, including the Figure 15 ready-count data. */
struct PerfCounters
{
    Cycle cycles = 0;
    InstCount instrs = 0;
    uint64_t fetchedInstrs = 0;
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
    uint64_t indirects = 0;
    uint64_t indirectMispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t storeForwards = 0;
    uint64_t fusedPairs = 0;
    uint64_t movesEliminated = 0;
    uint64_t fetchStallCycles = 0;
    uint64_t stallMispredict = 0; ///< waiting for branch resolution
    uint64_t stallSerialize = 0;  ///< waiting for serializing commit
    uint64_t stallBubble = 0;     ///< frontend redirect/override bubbles
    uint64_t robFullStalls = 0;
    uint64_t rsFullStalls = 0;
    uint64_t highPriorityInsts = 0;
    uint64_t loadDefers = 0;

    /** Per-RS-per-cycle histogram of ready-instruction counts. */
    static constexpr unsigned READY_BUCKETS = 9; // 0..7, 8+
    uint64_t readyHist[READY_BUCKETS] = {};
    uint64_t readySamples = 0;

    /**
     * Top-down CPI stack (arXiv:2106.09991 style): every cycle is
     * attributed to exactly one bucket, so the five buckets always sum
     * to `cycles` exactly — the invariant the obs layer reports on.
     */
    uint64_t tdRetiring = 0;    ///< at least one instruction committed
    uint64_t tdFrontend = 0;    ///< window empty, fetch not supplying
    uint64_t tdBadSpec = 0;     ///< window empty behind a mispredict
    uint64_t tdBackendMem = 0;  ///< ROB head is a stalled load/store
    uint64_t tdBackendCore = 0; ///< ROB head stalled on execution

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instrs) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    mpki() const
    {
        return instrs ? 1000.0 * static_cast<double>(branchMispredicts) /
                            static_cast<double>(instrs)
                      : 0.0;
    }
};

class Core
{
  public:
    /**
     * @param sys   functional system (memory + devices) the oracle runs on
     * @param mem   shared timing memory hierarchy
     * @param entry reset pc
     */
    Core(const CoreConfig &cfg, HartId hart, iss::System &sys,
         uarch::MemHierarchy &mem, Addr entry);

    /**
     * Advance one cycle — or more: with event-driven skip-ahead
     * enabled, a provably idle cycle fast-forwards to the next cycle
     * any stage can make progress, charging every skipped cycle to the
     * same counters the per-cycle reference path would have bumped.
     * @param budget upper bound on cycles this call may consume (>= 1);
     * pass the caller's remaining cycle allowance so a skip never
     * overshoots a maxCycles limit the reference path would honor.
     * @return simulated cycles consumed (>= 1, <= budget). Callers
     * that tick a shared CLINT once per cycle must catch it up by the
     * extra cycles (see Soc::run).
     */
    Cycle tick(Cycle budget = ~0ULL);

    /** True once the oracle has halted and the pipeline has drained. */
    bool done() const;

    /** Oracle halt predicate (e.g. SimCtrl exit). */
    void setHaltFn(std::function<bool()> fn) { haltFn_ = std::move(fn); }

    /** DiffTest commit probe (one call per committed instruction). */
    void
    setCommitHook(std::function<void(const difftest::CommitProbe &)> fn)
    {
        commitHook_ = std::move(fn);
    }

    /**
     * Batched commit probe interface: with ModelOpts::batchCommit the
     * probes of one cycle's commit group are delivered in a single
     * call (program order preserved), amortizing the per-instruction
     * hook indirection; with batching ablated the same hook is called
     * once per instruction with n == 1, so subscribers observe an
     * identical probe stream either way.
     */
    void
    setCommitBatchHook(
        std::function<void(const difftest::CommitProbe *, unsigned)> fn)
    {
        commitBatchHook_ = std::move(fn);
    }

    /** Store buffer drain probe (store enters the cache hierarchy). */
    void
    setStoreHook(std::function<void(const difftest::StoreProbe &)> fn)
    {
        storeHook_ = std::move(fn);
    }

    /** Oracle-time store probe: fires when the functional oracle
     *  performs a store, i.e. at the earliest point the value exists.
     *  The Global Memory subscribes here so producer values are always
     *  recorded before any consumer load can observe them. */
    void
    setSpecStoreHook(std::function<void(const difftest::StoreProbe &)> fn)
    {
        specStoreHook_ = std::move(fn);
    }

    const PerfCounters &perf() const { return perf_; }
    PerfCounters &perf() { return perf_; }
    const CoreConfig &cfg() const { return cfg_; }
    HartId hartId() const { return hart_; }

    /** The oracle's architectural state (committed + in-flight). */
    iss::ArchState &oracleState() { return oracle_; }

    /** Sibling cores whose LR reservations must be broken by this
     *  core's stores (RVWMO reservation-granule semantics). Set by the
     *  Soc; may be null for single-core systems. Multi-core SoCs tick
     *  their harts in lockstep, so skip-ahead is disabled here. */
    void
    setPeers(const std::vector<Core *> *peers)
    {
        peers_ = peers;
        if (peers_)
            skipEnabled_ = false;
    }

    /** Idle cycles fast-forwarded by event-driven skip-ahead (a subset
     *  of perf().cycles; 0 with `--xs-no-skip`). */
    Cycle skippedCycles() const { return skippedCycles_; }
    /** Number of skip jumps taken (each covers >= 1 idle cycle). */
    uint64_t skipJumps() const { return skipJumps_; }
    iss::Mmu &oracleMmu() { return mmu_; }

    /** Fill the CSR diff probe from the oracle's committed view. */
    void fillCsrProbe(difftest::CsrProbe &probe) const;

    /**
     * Fault injection for the DiffTest demo (Section IV-C): the next
     * load to commit gets its value corrupted by @p xorMask.
     */
    void injectLoadFault(uint64_t xorMask) { faultMask_ = xorMask; }

    /**
     * Test-only fault hook: flip bits of the next committed register
     * write (the DUT-visible probe value), modeling a datapath bug the
     * checkers must catch at that very commit.
     */
    void injectCommitFault(uint64_t xorMask)
    {
        commitFaultMask_ = xorMask;
    }

    /**
     * Test-only fault hook: silently drop the next plain store (the
     * oracle's memory write is reverted), modeling a lost store-buffer
     * entry. Divergence surfaces at the next dependent load.
     */
    void injectDropStore() { dropStorePending_ = true; }

    /** Attach an event tracer (null detaches; owned by the caller). */
    void setTrace(obs::TraceBuffer *trace) { trace_ = trace; }

    /**
     * Make the next load raise a spurious page fault, modeling the
     * Figure 3 scenario: a stale/speculative TLB entry makes the DUT
     * fault where an architectural reference would not. The oracle
     * takes the trap (so the DUT's own stream stays consistent) and
     * DiffTest must reconcile via the page-fault diff-rule.
     */
    void injectSpuriousPageFault() { injectPageFault_ = true; }

    Cycle now() const { return now_; }

  private:
    struct Rec
    {
        uint64_t seq = 0;
        Addr pc = 0;
        isa::DecodedInst di;
        isa::FuType fu = isa::FuType::Alu;

        // Oracle outcomes.
        bool taken = false;
        Addr nextPc = 0;
        bool trapped = false;
        uint64_t trapCause = 0;
        difftest::CommitProbe probe;

        // Dependencies (producer sequence numbers; 0 = none).
        uint64_t src[3] = {0, 0, 0};
        uint64_t storeDataSrc = 0; ///< split STD dependency

        // Pipeline status.
        Cycle fetchReadyAt = 0;
        Cycle completedAt = 0;
        bool dispatched = false;
        bool issued = false;
        bool eliminated = false;   ///< move elimination: free at rename
        bool fusedWithPrev = false;
        bool serialize = false;    ///< stall fetch until this commits
        bool mispredicted = false;
        bool highPriority = false; ///< PUBS slice member
        uarch::CondPred condPred;      ///< TAGE coordinates (branches)
        uarch::IndirectPred indPred;   ///< ITTAGE coordinates (jalr)

        bool isLoad = false;
        bool isStore = false;
        Addr instPaddr = 0;
        Addr memVaddr = 0;
        Addr memPaddr = 0;
        uint8_t memSize = 0;
    };

    struct PendingStore
    {
        Addr vaddr, paddr;
        uint64_t data;
        uint8_t size;
        uint64_t seq;
        Cycle drainableAt;
    };

    // ---- pipeline stages (called in reverse order each tick) ----
    unsigned doCommit(); ///< @return instructions committed this cycle
    bool drainStoreBuffer(); ///< @return true when a store drained
    unsigned doIssue();      ///< @return instructions issued this cycle
    void doDispatch();
    void doFetch();

    /** Charge this cycle to exactly one top-down bucket. */
    void classifyCycle(unsigned committed);

    /** Window slot of @p seq (seqs are dense; the window capacity is a
     *  power of two >= max in-flight instructions, so live seqs never
     *  collide). Indexes recRing_ and the bitset-scheduler arrays. */
    unsigned slotOf(uint64_t seq) const
    {
        return static_cast<unsigned>(seq) & winMask_;
    }
    /** Payload of a seq known to be live (in fetchBuffer_ or rob_). */
    Rec &ring(uint64_t seq) { return recRing_[slotOf(seq)]; }
    const Rec &ring(uint64_t seq) const { return recRing_[slotOf(seq)]; }

    // ---- bitset scoreboard (ModelOpts::bitsetSched) ----
    bool
    readyBit(uint64_t seq) const
    {
        unsigned s = slotOf(seq);
        return (readyBits_[s >> 6] >> (s & 63)) & 1;
    }
    void
    setReadyBit(uint64_t seq)
    {
        unsigned s = slotOf(seq);
        readyBits_[s >> 6] |= 1ULL << (s & 63);
    }
    void
    clearReadyBit(uint64_t seq)
    {
        unsigned s = slotOf(seq);
        readyBits_[s >> 6] &= ~(1ULL << (s & 63));
    }
    /** Fast operand-available test: committed or woken-up producer.
     *  Only valid for seqs that can actually be producers (live seqs
     *  always are: renamed sources point at in-flight or committed
     *  instructions, never at unallocated ones). */
    bool
    srcDone(uint64_t producerSeq) const
    {
        return producerSeq == 0 || producerSeq <= lastCommittedSeq_ ||
               readyBit(producerSeq);
    }
    /** Record @p rec's completion cycle and schedule its wakeup. */
    void scheduleCompletion(Rec &rec, Cycle at);
    /** Fire all completion events with cycle <= now_ (sets bits). */
    void drainCompletions();
    /** Set @p seq's ready bit and wake RS entries waiting on it. */
    void markReady(uint64_t seq);
    /** Insert @p seq into FU @p ft's ready queue (ascending seq). */
    void insertReady(unsigned ft, uint64_t seq);

    // ---- event-driven skip-ahead (ModelOpts::skipAhead) ----
    /** Earliest future cycle at which any stage can make progress;
     *  0 when no timed event is pending. */
    Cycle nextEventAt() const;
    /** Replicate the just-executed idle tick's per-cycle counter
     *  increments over @p extra more cycles (closed form). */
    void applyIdleDelta(Cycle extra);

    /** Functionally execute the next oracle instruction into @p rec.
     *  @return false when the oracle cannot make progress. */
    bool oracleStep(Rec &rec);

    /** Consult the frontend predictors for @p rec at fetch. */
    void predictControl(Rec &rec, unsigned &bubble);

    /** Train predictors at commit, in program order. */
    void trainPredictors(const Rec &rec);

    Rec *recBySeq(uint64_t seq);
    bool srcReady(uint64_t producerSeq) const;
    bool allSrcsReady(const Rec &rec) const;
    void markPubsSlice(Rec &branch);

    CoreConfig cfg_;
    HartId hart_;
    iss::System &sys_;
    uarch::MemHierarchy &mem_;

    // Oracle.
    iss::ArchState oracle_;
    iss::Mmu mmu_;
    std::function<bool()> haltFn_;
    bool oracleHalted_ = false;

    /**
     * Fixed-capacity FIFO of sequence numbers. The ROB and fetch
     * buffer have hard capacity bounds from the config, so a
     * power-of-two ring with head/count indices replaces std::deque
     * on the per-instruction push/pop path with fully inlined
     * arithmetic. init() must be called with the capacity bound
     * before use; push_back beyond it is the caller's bug (the
     * dispatch/fetch stages enforce the bound first).
     */
    struct SeqRing {
        std::vector<uint64_t> buf;
        uint32_t mask = 0, head = 0, count = 0;
        void
        init(unsigned cap)
        {
            unsigned c = 1;
            while (c < cap)
                c <<= 1;
            buf.assign(c, 0);
            mask = c - 1;
            head = 0;
            count = 0;
        }
        bool empty() const { return count == 0; }
        size_t size() const { return count; }
        uint64_t front() const { return buf[head]; }
        uint64_t back() const { return buf[(head + count - 1) & mask]; }
        uint64_t
        operator[](size_t i) const
        {
            return buf[(head + static_cast<uint32_t>(i)) & mask];
        }
        void
        push_back(uint64_t v)
        {
            buf[(head + count) & mask] = v;
            ++count;
        }
        void
        pop_front()
        {
            head = (head + 1) & mask;
            --count;
        }
    };

    // Frontend.
    uarch::MicroBtb ubtb_;
    uarch::Btb btb_;
    uarch::Tage tage_;
    uarch::Ittage ittage_;
    uarch::Ras ras_;
    SeqRing fetchBuffer_; ///< fetched, not yet dispatched
    Cycle fetchResumeAt_ = 0;
    uint64_t mispredictWaitSeq_ = 0; ///< fetch stalled on this branch
    uint64_t serializeWaitSeq_ = 0;  ///< fetch stalled until commit

    // Window. Rec payloads live in recRing_, a seq-slot-indexed ring
    // (fetch writes each ~300-byte record exactly once, in place);
    // rob_ and fetchBuffer_ carry only sequence numbers, so the
    // fetch -> dispatch -> commit flow never copies a Rec.
    std::vector<Rec> recRing_; ///< [slotOf(seq)] payloads of live seqs
    SeqRing rob_;
    uint64_t nextSeq_ = 1;
    uint64_t lastCommittedSeq_ = 0;
    std::vector<uint64_t> renameMap_; ///< 64 arch regs -> producer seq
    unsigned lqUsed_ = 0, sqUsed_ = 0;
    unsigned intPrfUsed_ = 0, fpPrfUsed_ = 0;

    // Reservation stations: per FuType list of seq numbers.
    static constexpr unsigned N_FU =
        static_cast<unsigned>(isa::FuType::None) + 1;
    std::vector<uint64_t> rs_[N_FU];
    std::vector<Cycle> fuBusyUntil_[N_FU]; ///< unpipelined units

    // Store path.
    std::deque<PendingStore> storeBuffer_;
    /// 8B slot -> in-flight (dispatched..drained) store seqs, oldest
    /// first. Sorted container: forwarding only ever looks up a single
    /// key, but a hash map here is the MJ-DET iteration-order bug class
    /// (see PR 3/PR 8) waiting for the first `for (auto &kv : ...)`.
    std::map<Addr, std::vector<uint64_t>> inflightStores_;

    // ---- fast-path scheduling state ----
    // Bitset scoreboard: one ready bit per window slot. A seq's bit is
    // set once its result is available (completedAt <= now_) and stays
    // set until the slot is reallocated to a new seq at fetch. The
    // scan path recomputes the same predicate from Rec fields instead.
    unsigned winMask_ = 0; ///< winCap - 1, winCap = pow2 >= max inflight
    std::vector<uint64_t> readyBits_;
    /// Pending completion events (cycle, seq), min-heap on cycle.
    std::vector<std::pair<Cycle, uint64_t>> compHeap_;

    /// Decode memo: decode(raw) is a pure function of the encoding,
    /// so the oracle's fetch path caches it in a direct-mapped table
    /// keyed by the raw bits (host-side only; no timing impact).
    struct DecodeEnt {
        isa::DecodedInst di{};
        bool valid = false;
    };
    static constexpr size_t kDecodeCacheSize = 8192; ///< pow2
    std::vector<DecodeEnt> decodeCache_;
    /// Events due exactly one cycle out (the single-cycle-op common
    /// case): they always fire at the very next drain, so a plain
    /// FIFO avoids the heap's push/pop entirely.
    std::vector<uint64_t> nextCycleQ_;

    // Wakeup-driven issue: instead of scanning every RS entry every
    // cycle, each dispatched entry counts its unready sources and
    // registers itself on each producer's waiter list; when a
    // producer's ready bit fires, waiters decrement and drop into the
    // per-FU ready queue at zero. Sound because readiness is monotone
    // (bits persist until slot reuse, which commit-gates) and because
    // the oracle-driven frontend has no wrong-path flush: RS entries
    // leave only via issue, so queue membership never needs revoking.
    std::vector<uint8_t> pendingSrcs_;           ///< [slot] unready srcs
    std::vector<uint8_t> slotFu_;                ///< [slot] FuType
    std::vector<uint64_t> slotSeq_;              ///< [slot] seq
    std::vector<std::vector<uint32_t>> waiters_; ///< [slot] -> consumers
    std::vector<uint64_t> readyQ_[N_FU]; ///< ready, ascending seq
    unsigned rsCount_[N_FU] = {};        ///< RS occupancy (fast mode)

    // Event-driven skip-ahead bookkeeping.
    bool skipEnabled_ = true; ///< cfg.model.skipAhead && single-core
    bool lastTickIdle_ = false; ///< arms the snapshot (host-only state)
    Cycle skippedCycles_ = 0;
    uint64_t skipJumps_ = 0;
    PerfCounters idleSnap_; ///< counters before the last idle tick

    // Batched commit delivery.
    std::function<void(const difftest::CommitProbe *, unsigned)>
        commitBatchHook_;
    std::vector<difftest::CommitProbe> commitBatch_;

    // Per-FU scratch for doIssue ready-candidate collection (avoids
    // per-cycle allocation in the hot loop).
    std::vector<uint64_t> readyScratch_;

    // Hooks and misc.
    std::function<void(const difftest::CommitProbe &)> commitHook_;
    std::function<void(const difftest::StoreProbe &)> storeHook_;
    std::function<void(const difftest::StoreProbe &)> specStoreHook_;
    const std::vector<Core *> *peers_ = nullptr;
    uint64_t faultMask_ = 0;
    bool injectPageFault_ = false;
    uint64_t commitFaultMask_ = 0;
    bool dropStorePending_ = false;
    obs::TraceBuffer *trace_ = nullptr;

    Cycle now_ = 0;
    PerfCounters perf_;
};

} // namespace minjie::xs

#endif // MINJIE_XIANGSHAN_CORE_H
