#include "xiangshan/core.h"

#include <algorithm>
#include <type_traits>

#include "common/log.h"
#include "isa/decode.h"

namespace minjie::xs {

using namespace minjie::isa;
using namespace minjie::iss;

namespace {

/** Does this instruction architecturally write an integer rd? */
bool
writesIntRd(const DecodedInst &di)
{
    Op op = di.op;
    if (di.rd == 0)
        return false;
    if (isFp(op))
        return !writesFpRd(op) && op != Op::Fsw && op != Op::Fsd;
    if (isCondBranch(op) || (isStore(op) && !isSc(op)))
        return false;
    switch (op) {
      case Op::Fence: case Op::FenceI: case Op::Ecall: case Op::Ebreak:
      case Op::Mret: case Op::Sret: case Op::Wfi: case Op::SfenceVma:
      case Op::Illegal:
        return false;
      default:
        return true;
    }
}

/** Rename-map slot for a source register. */
unsigned
srcSlot(unsigned reg, bool fp)
{
    return (fp ? 32 : 0) + reg;
}

/** Is this a register-to-register move the rename stage can eliminate? */
bool
isEliminableMove(const DecodedInst &di)
{
    if (di.rd == 0)
        return false;
    if (di.op == Op::Addi && di.imm == 0 && di.rs1 != 0)
        return true;
    if (di.op == Op::Add && (di.rs1 == 0 || di.rs2 == 0))
        return true;
    return false;
}

} // namespace

Core::Core(const CoreConfig &cfg, HartId hart, iss::System &sys,
           uarch::MemHierarchy &mem, Addr entry)
    : cfg_(cfg), hart_(hart), sys_(sys), mem_(mem), mmu_(oracle_, sys.bus),
      ubtb_(cfg.ubtbEntries), btb_(cfg.btbEntries), tage_(cfg.tageEntries),
      ittage_(512), ras_(cfg.rasDepth)
{
    oracle_.reset(entry, hart);
    oracle_.csr.timeSrc = nullptr;
    mmu_.bindDram(&sys.dram);
    renameMap_.assign(64, 0);
    for (unsigned i = 0; i < N_FU; ++i)
        fuBusyUntil_[i].assign(cfg_.fu[i].pipelined ? 0 : cfg_.fu[i].count,
                               0);

    // Scoreboard window: live seqs span at most robSize +
    // fetchBufferSize consecutive values (every allocated seq sits in
    // the fetch buffer or the ROB until commit), so a power-of-two
    // capacity strictly above that span guarantees no two live seqs
    // share a slot.
    unsigned span = cfg_.robSize + cfg_.fetchBufferSize + 1;
    unsigned cap = 1;
    while (cap < span)
        cap <<= 1;
    winMask_ = cap - 1;
    recRing_.resize(cap);
    rob_.init(cfg_.robSize + 1);
    fetchBuffer_.init(cfg_.fetchBufferSize + 1);
    decodeCache_.resize(kDecodeCacheSize);
    readyBits_.assign((cap + 63) / 64, 0);
    pendingSrcs_.assign(cap, 0);
    slotFu_.assign(cap, 0);
    slotSeq_.assign(cap, 0);
    waiters_.assign(cap, {});
    skipEnabled_ = cfg_.model.skipAhead;
}

void
Core::scheduleCompletion(Rec &rec, Cycle at)
{
    rec.completedAt = at;
    if (!cfg_.model.bitsetSched)
        return;
    if (at <= now_) {
        // Already visible under the reference predicate
        // (completedAt <= now_): wake consumers immediately.
        markReady(rec.seq);
    } else if (at == now_ + 1) {
        nextCycleQ_.push_back(rec.seq);
    } else {
        compHeap_.emplace_back(at, rec.seq);
        std::push_heap(compHeap_.begin(), compHeap_.end(),
                       std::greater<>());
    }
}

void
Core::drainCompletions()
{
    // Fires at tick start, before any stage evaluates readiness, so a
    // set bit is exactly equivalent to the reference predicate
    // `completedAt != 0 && completedAt <= now_` for live seqs. Commit
    // requires completedAt <= now_, hence every committed seq's event
    // has already fired — pending heap entries only name live seqs.
    // Next-cycle lane first: every entry was queued one cycle before
    // an earlier tick's end, so its due time is <= now_ by the time
    // any drain runs. Wake order between the lane and the heap is
    // immaterial — insertReady keeps readyQ_ seq-sorted, and the
    // ready bits / pending-source counters are order-independent.
    if (!nextCycleQ_.empty()) {
        for (uint64_t s : nextCycleQ_)
            markReady(s);
        nextCycleQ_.clear();
    }
    while (!compHeap_.empty() && compHeap_.front().first <= now_) {
        markReady(compHeap_.front().second);
        std::pop_heap(compHeap_.begin(), compHeap_.end(),
                      std::greater<>());
        compHeap_.pop_back();
    }
}

void
Core::markReady(uint64_t seq)
{
    setReadyBit(seq);
    // Wake RS entries that registered on this producer at dispatch.
    // A waiting consumer can never have issued (issue requires all
    // sources done), and the producer's slot cannot have been reused
    // while waiters exist (reuse requires the producer to commit,
    // which requires this very event to have fired), so every entry
    // in the list is live.
    auto &w = waiters_[slotOf(seq)];
    for (uint32_t c : w)
        if (--pendingSrcs_[c] == 0)
            insertReady(slotFu_[c], slotSeq_[c]);
    w.clear();
}

void
Core::insertReady(unsigned ft, uint64_t seq)
{
    auto &q = readyQ_[ft];
    if (q.empty() || seq > q.back()) {
        q.push_back(seq); // common case: woken entry is the youngest
        return;
    }
    q.insert(std::upper_bound(q.begin(), q.end(), seq), seq);
}

bool
Core::done() const
{
    return oracleHalted_ && rob_.empty() && fetchBuffer_.empty() &&
           storeBuffer_.empty();
}

Core::Rec *
Core::recBySeq(uint64_t seq)
{
    // Every live (allocated, uncommitted) seq sits in fetchBuffer_ or
    // rob_, and its payload lives at ring(seq); anything outside the
    // (lastCommittedSeq_, nextSeq_) window is dead or unallocated.
    if (seq == 0 || seq <= lastCommittedSeq_ || seq >= nextSeq_)
        return nullptr;
    return &recRing_[slotOf(seq)];
}

bool
Core::srcReady(uint64_t producerSeq) const
{
    if (producerSeq == 0 || producerSeq <= lastCommittedSeq_)
        return true;
    if (cfg_.model.bitsetSched)
        return readyBit(producerSeq);
    auto *self = const_cast<Core *>(this);
    const Rec *rec = self->recBySeq(producerSeq);
    if (!rec)
        return true;
    return rec->completedAt != 0 && rec->completedAt <= now_;
}

bool
Core::allSrcsReady(const Rec &rec) const
{
    return srcReady(rec.src[0]) && srcReady(rec.src[1]) &&
           srcReady(rec.src[2]);
}

void
Core::fillCsrProbe(difftest::CsrProbe &p) const
{
    const auto &csr = oracle_.csr;
    p.hart = hart_;
    p.mstatus = csr.mstatus;
    p.mepc = csr.mepc;
    p.mcause = csr.mcause;
    p.mtval = csr.mtval;
    p.mtvec = csr.mtvec;
    p.mscratch = csr.mscratch;
    p.mie = csr.mie;
    p.mip = csr.mip;
    p.medeleg = csr.medeleg;
    p.mideleg = csr.mideleg;
    p.sepc = csr.sepc;
    p.scause = csr.scause;
    p.stval = csr.stval;
    p.stvec = csr.stvec;
    p.sscratch = csr.sscratch;
    p.satp = csr.satp;
    p.mcycle = csr.mcycle;
    p.minstret = csr.minstret;
    p.fflags = csr.fflags;
    p.frm = csr.frm;
    p.priv = static_cast<uint8_t>(oracle_.priv);
    p.misa = csr.misa;
    p.mvendorid = 0;
    p.marchid = 25;
    p.mimpid = 0;
    p.mhartid = csr.mhartid;
    p.mcounteren = csr.mcounteren;
    p.scounteren = csr.scounteren;
    p.pmpcfg0 = csr.pmpcfg0;
    p.pmpaddr0 = csr.pmpaddr0;
    p.timeVal = csr.timeSrc ? *csr.timeSrc : 0;
}

bool
Core::oracleStep(Rec &rec)
{
    rec.pc = oracle_.pc;
    rec.probe.hart = hart_;
    rec.probe.pc = rec.pc;

    // Asynchronous interrupts: mirror the CLINT lines into mip, and
    // take a deliverable interrupt at this instruction boundary. The
    // REF cannot predict this timing — DiffTest's forced-interrupt
    // diff-rule replays it (the Dromajo approach, Section V-C).
    {
        auto &csr = oracle_.csr;
        uint64_t mip = csr.mip & ~(MIP_MTIP | MIP_MSIP);
        if (sys_.clint.timerIrq(hart_))
            mip |= MIP_MTIP;
        if (sys_.clint.softwareIrq(hart_))
            mip |= MIP_MSIP;
        csr.mip = mip;
        uint64_t irq = pendingInterrupt(oracle_);
        if (irq != ~0ULL) {
            takeInterrupt(oracle_, static_cast<Irq>(irq));
            rec.trapped = true;
            rec.trapCause = irq;
            rec.serialize = true;
            rec.fu = FuType::Jmp;
            rec.nextPc = oracle_.pc;
            rec.probe.interrupt = true;
            rec.probe.trapCause = irq;
            return true;
        }
    }

    uint32_t raw;
    Trap ft = mmu_.fetch(rec.pc, raw);
    rec.instPaddr = mmu_.lastPaddr();

    if (ft.pending()) {
        takeTrap(oracle_, ft, rec.pc);
        ++oracle_.instret;
        rec.trapped = true;
        rec.trapCause = static_cast<uint64_t>(ft.cause);
        rec.serialize = true;
        rec.fu = FuType::Jmp;
        rec.nextPc = oracle_.pc;
        rec.probe.trap = true;
        rec.probe.trapCause = rec.trapCause;
        return true;
    }

    // Memoized decode: hot loops re-fetch the same few encodings, and
    // decode is pure in the raw bits, so a direct-mapped lookup
    // replaces the full decoder on hits.
    DecodeEnt &de =
        decodeCache_[(raw ^ (raw >> 13)) & (kDecodeCacheSize - 1)];
    if (!de.valid || de.di.raw != raw) {
        de.di = decode(raw);
        de.valid = true;
    }
    rec.di = de.di;
    rec.probe.inst = raw;
    rec.probe.rd = rec.di.rd;

    if (injectPageFault_ && isLoad(rec.di.op)) {
        // Speculative-TLB fault injection (Figure 3): fault instead of
        // executing; the trap value is the load's virtual address.
        injectPageFault_ = false;
        Addr vaddr = oracle_.x[rec.di.rs1] +
                     static_cast<uint64_t>(rec.di.imm);
        Trap t = Trap::make(Exc::LoadPageFault, vaddr);
        takeTrap(oracle_, t, rec.pc);
        ++oracle_.instret;
        ++oracle_.csr.minstret;
        ++oracle_.csr.mcycle;
        rec.trapped = true;
        rec.trapCause = static_cast<uint64_t>(Exc::LoadPageFault);
        rec.serialize = true;
        rec.fu = FuType::Jmp;
        rec.nextPc = oracle_.pc;
        rec.probe.trap = true;
        rec.probe.trapCause = rec.trapCause;
        rec.probe.memVaddr = vaddr;
        return true;
    }

    // Test-only drop-store hook: snapshot the memory the next plain
    // store will overwrite so it can be reverted after execution. The
    // oracle then behaves as if the store was lost in the store path;
    // the first dependent load commits stale data and DiffTest flags
    // the rd mismatch against the REF.
    bool dropThisStore = false;
    Addr dropVaddr = 0;
    uint64_t dropOld = 0;
    unsigned dropSize = 0;
    if (dropStorePending_ && isStore(rec.di.op) && !isAmo(rec.di.op) &&
        !isSc(rec.di.op)) {
        switch (rec.di.op) {
          case Op::Sb: dropSize = 1; break;
          case Op::Sh: dropSize = 2; break;
          case Op::Sw: case Op::Fsw: dropSize = 4; break;
          default: dropSize = 8; break; // Sd / Fsd
        }
        dropVaddr = oracle_.x[rec.di.rs1] +
                    static_cast<uint64_t>(rec.di.imm);
        if (!mmu_.load(dropVaddr, dropSize, dropOld).pending())
            dropThisStore = true;
    }

    ExecInfo info;
    Trap et = execInst(oracle_, mmu_, rec.di, fp::FpBackend::Host, &info);
    if (et.pending()) {
        takeTrap(oracle_, et, rec.pc);
        rec.trapped = true;
        rec.trapCause = static_cast<uint64_t>(et.cause);
        rec.probe.trap = true;
        rec.probe.trapCause = rec.trapCause;
    }
    ++oracle_.instret;
    ++oracle_.csr.minstret;
    ++oracle_.csr.mcycle;

    rec.nextPc = oracle_.pc;
    Op op = rec.di.op;
    rec.fu = fuType(op);
    if (rec.trapped)
        rec.fu = FuType::Jmp;
    rec.taken = isCondBranch(op) && rec.nextPc != rec.pc + rec.di.size;
    rec.serialize = rec.trapped || isSystem(op) || isFence(op) ||
                    isCsr(op) || isAmo(op);

    if (!rec.trapped) {
        if (writesIntRd(rec.di)) {
            rec.probe.rdWritten = true;
            rec.probe.rdValue = oracle_.x[rec.di.rd];
        } else if (writesFpRd(op)) {
            rec.probe.fpWritten = true;
            rec.probe.rdValue = oracle_.f[rec.di.rd];
        }
        if (info.memValid) {
            rec.probe.isLoad = !info.isStore;
            rec.probe.isStore = info.isStore;
            rec.probe.skip = info.isMmio;
            rec.probe.memVaddr = info.memVaddr;
            rec.probe.memPaddr = info.memPaddr;
            rec.probe.memData = info.memData;
            rec.probe.memSize = info.memSize;
            rec.isLoad = !info.isStore;
            rec.isStore = info.isStore;
            rec.memVaddr = info.memVaddr;
            rec.memPaddr = info.memPaddr;
            rec.memSize = info.memSize;
        }
        rec.probe.scFailed = info.scFailed;
        if (info.memValid && info.isStore && !info.isMmio) {
            if (specStoreHook_)
                specStoreHook_({hart_, info.memPaddr, info.memData,
                                info.memSize});
            // Break sibling harts' LR reservations on the same granule.
            if (peers_) {
                Addr granule = info.memPaddr & ~static_cast<Addr>(63);
                for (Core *peer : *peers_) {
                    if (peer == this)
                        continue;
                    auto &st = peer->oracle_;
                    if (st.resValid && st.resAddr == granule)
                        st.resValid = false;
                }
            }
        }
    }

    if (dropThisStore && !rec.trapped && info.memValid && info.isStore &&
        !info.isMmio) {
        mmu_.store(dropVaddr, dropSize, dropOld);
        dropStorePending_ = false;
        if (trace_)
            trace_->record(obs::Ev::FaultInject, now_, rec.pc,
                           info.memPaddr, /*drop-store=*/1,
                           static_cast<uint8_t>(hart_));
    }

    if (haltFn_ && haltFn_())
        oracleHalted_ = true;
    return true;
}

void
Core::predictControl(Rec &rec, unsigned &bubble)
{
    Op op = rec.di.op;
    if (isCondBranch(op)) {
        rec.condPred = tage_.predict(rec.pc);
        // Fetch-time history update with the resolved direction (the
        // oracle-driven fetch never walks a wrong path).
        tage_.pushHistory(rec.taken);
        const auto &p = rec.condPred;
        rec.mispredicted = p.taken != rec.taken;
        rec.highPriority = false;
        // PUBS confidence estimation comes straight from the TAGE
        // provider counter plus SC agreement.
        rec.probe.interrupt = false;
        if (!p.confident)
            rec.highPriority = true; // provisional; refined at dispatch
        if (!rec.mispredicted && rec.taken) {
            Addr t;
            bool bias;
            if (!ubtb_.predict(rec.pc, t, bias))
                bubble += cfg_.ubtbMissBubble;
            Addr bt;
            if (!btb_.predict(rec.pc, bt) || bt != rec.nextPc)
                bubble += cfg_.ubtbMissBubble;
        }
    } else if (op == Op::Jal) {
        Addr t;
        bool bias;
        if (!ubtb_.predict(rec.pc, t, bias) || t != rec.nextPc)
            bubble += cfg_.ubtbMissBubble;
        if (rec.di.rd == 1)
            ras_.push(rec.pc + rec.di.size);
    } else if (op == Op::Jalr) {
        bool isRet = rec.di.rd == 0 && rec.di.rs1 == 1 && rec.di.imm == 0;
        Addr predicted = 0;
        if (isRet) {
            predicted = ras_.pop();
        } else if (cfg_.hasIttage) {
            rec.indPred = ittage_.predict(rec.pc);
            ittage_.pushHistory(rec.nextPc);
            predicted = rec.indPred.target;
        } else {
            Addr t;
            if (btb_.predict(rec.pc, t))
                predicted = t;
        }
        if (rec.di.rd == 1)
            ras_.push(rec.pc + rec.di.size);
        rec.mispredicted = predicted != rec.nextPc;
    }
}

void
Core::trainPredictors(const Rec &rec)
{
    Op op = rec.di.op;
    if (isCondBranch(op)) {
        ++perf_.branches;
        if (rec.mispredicted)
            ++perf_.branchMispredicts;
        tage_.update(rec.condPred, rec.taken);
        if (rec.taken) {
            ubtb_.update(rec.pc, rec.nextPc, true);
            btb_.update(rec.pc, rec.nextPc);
        }
    } else if (op == Op::Jal) {
        ubtb_.update(rec.pc, rec.nextPc, true);
        btb_.update(rec.pc, rec.nextPc);
    } else if (op == Op::Jalr) {
        ++perf_.indirects;
        if (rec.mispredicted)
            ++perf_.indirectMispredicts;
        if (cfg_.hasIttage)
            ittage_.update(rec.indPred, rec.nextPc);
        btb_.update(rec.pc, rec.nextPc);
    }
}

void
Core::markPubsSlice(Rec &branch)
{
    // Prioritize the unconfident branch and its producer slice
    // (ConfTable + BrSliceTable + DefTable of the PUBS paper, walked
    // over the in-flight window).
    branch.highPriority = true;
    ++perf_.highPriorityInsts;

    std::vector<uint64_t> frontier = {branch.src[0], branch.src[1]};
    for (unsigned depth = 0; depth < cfg_.pubsSliceDepth; ++depth) {
        std::vector<uint64_t> next;
        for (uint64_t seq : frontier) {
            Rec *r = recBySeq(seq);
            if (!r || r->issued || r->highPriority)
                continue;
            r->highPriority = true;
            ++perf_.highPriorityInsts;
            next.push_back(r->src[0]);
            next.push_back(r->src[1]);
            next.push_back(r->src[2]);
        }
        frontier = std::move(next);
        if (frontier.empty())
            break;
    }
}

void
Core::doFetch()
{
    if (oracleHalted_)
        return;

    // Resolve outstanding redirect stalls.
    if (mispredictWaitSeq_) {
        Rec *r = recBySeq(mispredictWaitSeq_);
        if (!r) {
            mispredictWaitSeq_ = 0; // resolved and committed already
        } else if (r->completedAt != 0) {
            fetchResumeAt_ =
                std::max(fetchResumeAt_,
                         r->completedAt + cfg_.mispredictPenalty);
            mispredictWaitSeq_ = 0;
        } else {
            ++perf_.fetchStallCycles;
            ++perf_.stallMispredict;
            return;
        }
    }
    if (serializeWaitSeq_) {
        if (serializeWaitSeq_ <= lastCommittedSeq_) {
            serializeWaitSeq_ = 0; // resume cycle set at commit
        } else {
            ++perf_.fetchStallCycles;
            ++perf_.stallSerialize;
            return;
        }
    }
    if (now_ < fetchResumeAt_) {
        ++perf_.fetchStallCycles;
        ++perf_.stallBubble;
        return;
    }
    if (fetchBuffer_.size() >= cfg_.fetchBufferSize)
        return;

    unsigned slots = static_cast<unsigned>(std::min<size_t>(
        cfg_.fetchWidth, cfg_.fetchBufferSize - fetchBuffer_.size()));
    unsigned bubble = 0;
    Addr lastLine = ~0ULL;
    Cycle lineReady = now_ + 1;

    for (unsigned i = 0; i < slots; ++i) {
        uint64_t seq = nextSeq_++;
        if (cfg_.model.bitsetSched)
            clearReadyBit(seq); // slot reuse: retire any stale bit
        Rec &rec = ring(seq);
        rec = Rec{};
        rec.seq = seq;

        if (!oracleStep(rec)) {
            --nextSeq_;
            break;
        }
        ++perf_.fetchedInstrs;
        if (trace_)
            trace_->record(obs::Ev::Fetch, now_, rec.pc, rec.seq, 0,
                           static_cast<uint8_t>(hart_));

        // Instruction-cache timing, once per touched line.
        Addr line = rec.pc & ~63ULL;
        if (line != lastLine) {
            unsigned lat = mem_.fetch(hart_, rec.pc,
                                      rec.instPaddr ? rec.instPaddr
                                                    : rec.pc,
                                      now_);
            lineReady = std::max(lineReady, now_ + lat);
            lastLine = line;
        }
        rec.fetchReadyAt = lineReady;

        predictControl(rec, bubble);

        bool stopMispredict = rec.mispredicted;
        bool stopSerialize = rec.serialize;
        bool stopTaken = isControl(rec.di.op) &&
                         rec.nextPc != rec.pc + rec.di.size;
        fetchBuffer_.push_back(seq);

        if (stopSerialize) {
            serializeWaitSeq_ = seq;
            break;
        }
        if (stopMispredict) {
            mispredictWaitSeq_ = seq;
            break;
        }
        if (oracleHalted_)
            break;
        if (stopTaken)
            break; // one taken transfer per fetch group
    }
    fetchResumeAt_ = std::max(fetchResumeAt_, now_ + 1 + bubble);
}

void
Core::doDispatch()
{
    unsigned width = 0;
    while (width < cfg_.decodeWidth && !fetchBuffer_.empty()) {
        Rec &rec = ring(fetchBuffer_.front());
        if (rec.fetchReadyAt > now_)
            break;
        if (rob_.size() >= cfg_.robSize) {
            ++perf_.robFullStalls;
            break;
        }
        if (rec.isLoad && lqUsed_ >= cfg_.lqSize)
            break;
        if (rec.isStore && sqUsed_ >= cfg_.sqSize)
            break;

        bool intDest = !rec.trapped && writesIntRd(rec.di);
        bool fpDest = !rec.trapped && writesFpRd(rec.di.op);
        if (intDest && intPrfUsed_ + 32 >= cfg_.intPrf)
            break;
        if (fpDest && fpPrfUsed_ + 32 >= cfg_.fpPrf)
            break;

        // Macro-op fusion: the previous instruction (already in the
        // ROB) plus this one form a fused pair when this one is a
        // plain ALU op that consumes and overwrites the previous ALU
        // result (paper Section IV-A).
        bool fused = false;
        if (cfg_.fusion && !rec.trapped && !rob_.empty()) {
            Rec &prev = ring(rob_.back());
            if (prev.seq + 1 == rec.seq && prev.fu == FuType::Alu &&
                !prev.issued && !prev.eliminated &&
                !prev.fusedWithPrev && !prev.isLoad &&
                rec.fu == FuType::Alu && !rec.isLoad && !rec.isStore &&
                writesIntRd(prev.di) && intDest &&
                prev.di.rd == rec.di.rd &&
                (rec.di.rs1 == prev.di.rd || rec.di.rs2 == prev.di.rd)) {
                fused = true;
            }
        }

        // Move elimination at rename (reference-counted physical regs
        // in the real design; modeled as a zero-latency zero-resource
        // rename-map copy here).
        bool eliminated = false;
        if (cfg_.moveElim && !rec.trapped && !fused &&
            isEliminableMove(rec.di)) {
            eliminated = true;
        }

        // Reservation-station capacity.
        unsigned ft = static_cast<unsigned>(rec.fu);
        unsigned rsOcc = cfg_.model.bitsetSched
                             ? rsCount_[ft]
                             : static_cast<unsigned>(rs_[ft].size());
        if (!eliminated && !fused && rsOcc >= cfg_.fu[ft].rsSize) {
            ++perf_.rsFullStalls;
            break;
        }

        // ---- rename: resolve sources ----
        if (!rec.trapped) {
            const DecodedInst &di = rec.di;
            Op op = di.op;
            if (di.rs1 != 0 || readsFpRs1(op))
                rec.src[0] =
                    renameMap_[srcSlot(di.rs1, readsFpRs1(op))];
            bool usesRs2 = isCondBranch(op) || isStore(op) || isAmo(op) ||
                           readsFpRs2(op) ||
                           (!isLoad(op) && !isCsr(op) && !isJump(op) &&
                            di.rs2 != 0 && !isFp(op));
            if (usesRs2 && (di.rs2 != 0 || readsFpRs2(op)))
                rec.src[1] =
                    renameMap_[srcSlot(di.rs2, readsFpRs2(op))];
            if (hasRs3(op))
                rec.src[2] = renameMap_[srcSlot(di.rs3, true)];

            // Split store-address/data: the STA uop (in the RS) only
            // waits for the address; the data dependency is tracked
            // separately and gates commit.
            if (rec.isStore && cfg_.splitStaStd && !isAmo(op)) {
                rec.storeDataSrc = rec.src[1];
                rec.src[1] = 0;
            }
        }

        if (eliminated) {
            // rd inherits the source's producer.
            unsigned slot = srcSlot(rec.di.rs1 ? rec.di.rs1 : rec.di.rs2,
                                    false);
            renameMap_[srcSlot(rec.di.rd, false)] = renameMap_[slot];
            rec.eliminated = true;
            scheduleCompletion(rec, now_);
            rec.issued = true;
            ++perf_.movesEliminated;
        } else {
            if (intDest) {
                renameMap_[srcSlot(rec.di.rd, false)] = rec.seq;
                ++intPrfUsed_;
            } else if (fpDest) {
                renameMap_[srcSlot(rec.di.rd, true)] = rec.seq;
                ++fpPrfUsed_;
            }
        }

        if (rec.isLoad)
            ++lqUsed_;
        if (rec.isStore) {
            ++sqUsed_;
            inflightStores_[rec.memPaddr & ~7ULL].push_back(rec.seq);
        }

        rec.fusedWithPrev = fused;
        rec.dispatched = true;

        uint64_t seq = rec.seq;
        rob_.push_back(seq);
        fetchBuffer_.pop_front();
        Rec &placed = rec; // payload stays put in the ring
        if (trace_)
            trace_->record(obs::Ev::Rename, now_, placed.pc,
                           static_cast<uint64_t>(rob_.size()), 0,
                           static_cast<uint8_t>(hart_));

        if (fused) {
            ++perf_.fusedPairs;
            // Completion is tied to the previous instruction's issue.
            Rec &prev = ring(rob_[rob_.size() - 2]);
            if (prev.completedAt != 0)
                scheduleCompletion(placed, prev.completedAt);
        } else if (!placed.eliminated) {
            if (cfg_.model.bitsetSched) {
                // Wakeup registration instead of a scannable RS list:
                // count unready sources and subscribe to each one's
                // completion; source-free entries drop straight into
                // the ready queue.
                unsigned slot = slotOf(seq);
                slotSeq_[slot] = seq;
                slotFu_[slot] = static_cast<uint8_t>(placed.fu);
                uint8_t pending = 0;
                for (uint64_t p :
                     {placed.src[0], placed.src[1], placed.src[2]}) {
                    if (p != 0 && !srcDone(p)) {
                        ++pending;
                        waiters_[slotOf(p)].push_back(slot);
                    }
                }
                pendingSrcs_[slot] = pending;
                // Seqs allocate monotonically, so a source-free entry
                // is the queue's new maximum: append keeps it sorted.
                if (pending == 0)
                    readyQ_[static_cast<unsigned>(placed.fu)].push_back(
                        seq);
                ++rsCount_[static_cast<unsigned>(placed.fu)];
            } else {
                rs_[static_cast<unsigned>(placed.fu)].push_back(seq);
            }
        }

        // PUBS: mark unconfident branch slices at dispatch.
        if (cfg_.policy == IssuePolicy::Pubs && placed.highPriority &&
            isCondBranch(placed.di.op)) {
            markPubsSlice(placed);
        } else if (cfg_.policy != IssuePolicy::Pubs) {
            placed.highPriority = false;
        }

        ++width;
    }
}

unsigned
Core::doIssue()
{
    unsigned nIssued = 0;
    for (unsigned ft = 0; ft < N_FU; ++ft) {
        auto &rs = rs_[ft];
        const FuCfg &fu = cfg_.fu[ft];

        // Outcome of one issue attempt: Issued = the entry leaves the
        // RS; Defer = retry a later cycle (entry stays); Stop = no
        // more issue bandwidth on this FU this cycle (entry stays and
        // so does everything younger).
        enum class Att { Issued, Defer, Stop };
        auto tryIssue = [&](uint64_t seq) -> Att {
            Rec *r = recBySeq(seq);
            if (!r)
                return Att::Defer;

            // Unpipelined units need a free unit.
            int unit = -1;
            if (!fu.pipelined) {
                for (unsigned u = 0; u < fuBusyUntil_[ft].size(); ++u) {
                    if (fuBusyUntil_[ft][u] <= now_) {
                        unit = static_cast<int>(u);
                        break;
                    }
                }
                if (unit < 0)
                    return Att::Stop; // all units busy
            }

            unsigned lat = fu.latency;
            if (r->fu == FuType::Ldu && r->isLoad) {
                if (r->probe.skip) {
                    lat = 20; // MMIO round trip
                } else {
                    // Store-to-load forwarding from an older in-flight
                    // store to the same 8-byte slot.
                    // Youngest in-flight store older than the load.
                    auto it = inflightStores_.find(r->memPaddr & ~7ULL);
                    Rec *st = nullptr;
                    bool fromBuffer = false;
                    if (it != inflightStores_.end()) {
                        uint64_t best = 0;
                        for (uint64_t sseq : it->second)
                            if (sseq < seq && sseq > best)
                                best = sseq;
                        if (best) {
                            st = recBySeq(best);
                            // Committed but not yet drained: the store
                            // buffer forwards directly.
                            fromBuffer =
                                !st && best <= lastCommittedSeq_;
                        }
                    }
                    if (st && st->isStore) {
                        if (!srcReady(st->storeDataSrc) ||
                            st->completedAt == 0 ||
                            st->completedAt > now_) {
                            ++perf_.loadDefers;
                            return Att::Defer; // data not ready: retry
                        }
                        lat = cfg_.storeForwardLatency;
                        ++perf_.storeForwards;
                    } else if (fromBuffer) {
                        lat = cfg_.storeForwardLatency;
                        ++perf_.storeForwards;
                    } else {
                        lat = 2 + mem_.load(hart_, r->memVaddr,
                                            r->memPaddr, now_);
                    }
                }
                ++perf_.loads;
            } else if (r->fu == FuType::Sta && isAmo(r->di.op)) {
                lat = 2 + mem_.store(hart_, r->memVaddr, r->memPaddr,
                                     now_);
            }

            r->issued = true;
            scheduleCompletion(*r, now_ + std::max(1u, lat));
            if (!fu.pipelined)
                fuBusyUntil_[ft][static_cast<unsigned>(unit)] =
                    r->completedAt;
            if (trace_)
                trace_->record(obs::Ev::Issue, now_, r->pc, seq,
                               static_cast<uint32_t>(r->completedAt -
                                                     now_),
                               static_cast<uint8_t>(hart_));

            // A fused follower completes with its leader.
            Rec *next = recBySeq(seq + 1);
            if (next && next->fusedWithPrev)
                scheduleCompletion(*next, r->completedAt);
            return Att::Issued;
        };

        // Fast path (AGE): the wakeup network maintained readyQ_
        // incrementally (an entry lands there the moment its last
        // source's bit fires) in seq order, which already IS the AGE
        // selection order — drain it in place, compacting survivors,
        // with no scan, no copy and no per-issue erase. Equivalence
        // with the reference scan: readiness is monotone, pendingSrcs_
        // counts exactly the sources with unset bits, and RS entries
        // were dispatched with fetchReadyAt <= now_ (doDispatch gates
        // on it and now_ is monotonic).
        if (cfg_.model.bitsetSched &&
            cfg_.policy != IssuePolicy::Pubs) {
            auto &q = readyQ_[ft];
            if (static_cast<FuType>(ft) == FuType::Alu) {
                unsigned bucket = std::min<unsigned>(
                    static_cast<unsigned>(q.size()),
                    PerfCounters::READY_BUCKETS - 1);
                ++perf_.readyHist[bucket];
                ++perf_.readySamples;
            }
            if (q.empty())
                continue;
            unsigned issued = 0;
            size_t w = 0, i = 0;
            for (; i < q.size(); ++i) {
                if (issued >= fu.rsIssueWidth)
                    break;
                Att a = tryIssue(q[i]);
                if (a == Att::Issued) {
                    ++issued;
                    --rsCount_[ft];
                } else if (a == Att::Defer) {
                    q[w++] = q[i];
                } else {
                    break; // Stop: keep this entry and the tail
                }
            }
            for (; i < q.size(); ++i)
                q[w++] = q[i];
            q.resize(w);
            nIssued += issued;
            continue;
        }

        // Collect ready candidates.
        readyScratch_.clear();
        auto &ready = readyScratch_;
        if (cfg_.model.bitsetSched) {
            ready.assign(readyQ_[ft].begin(), readyQ_[ft].end());
        } else {
            for (uint64_t seq : rs) {
                Rec *r = recBySeq(seq);
                if (r && r->fetchReadyAt <= now_ && allSrcsReady(*r))
                    ready.push_back(seq);
            }
        }

        // Figure 15 statistics: sampled on the dual-issue integer
        // queue (the one PUBS competes for on sjeng).
        if (static_cast<FuType>(ft) == FuType::Alu) {
            unsigned bucket = std::min<unsigned>(
                static_cast<unsigned>(ready.size()),
                PerfCounters::READY_BUCKETS - 1);
            ++perf_.readyHist[bucket];
            ++perf_.readySamples;
        }
        if (ready.empty())
            continue;

        // Selection order: AGE = oldest first; PUBS = high-priority
        // slices first, age-ordered within a class. The fast path's
        // queue copy is already seq-ascending, so PUBS needs only a
        // stable partition by priority class.
        if (cfg_.model.bitsetSched) {
            std::stable_sort(ready.begin(), ready.end(),
                             [&](uint64_t a, uint64_t b) {
                                 Rec *ra = recBySeq(a);
                                 Rec *rb = recBySeq(b);
                                 bool ha = ra && ra->highPriority;
                                 bool hb = rb && rb->highPriority;
                                 return ha && !hb;
                             });
        } else {
            std::sort(ready.begin(), ready.end(),
                      [&](uint64_t a, uint64_t b) {
                          if (cfg_.policy == IssuePolicy::Pubs) {
                              Rec *ra = recBySeq(a), *rb = recBySeq(b);
                              bool ha = ra && ra->highPriority;
                              bool hb = rb && rb->highPriority;
                              if (ha != hb)
                                  return ha;
                          }
                          return a < b;
                      });
        }

        unsigned issued = 0;
        for (uint64_t seq : ready) {
            if (issued >= fu.rsIssueWidth)
                break;
            Att a = tryIssue(seq);
            if (a == Att::Stop)
                break;
            if (a == Att::Defer)
                continue;
            // Remove from the RS.
            if (cfg_.model.bitsetSched) {
                auto &q = readyQ_[ft];
                q.erase(std::lower_bound(q.begin(), q.end(), seq));
                --rsCount_[ft];
            } else {
                rs.erase(std::find(rs.begin(), rs.end(), seq));
            }
            ++issued;
        }
        nIssued += issued;
    }
    return nIssued;
}

bool
Core::drainStoreBuffer()
{
    if (storeBuffer_.empty() || storeBuffer_.front().drainableAt > now_)
        return false;
    PendingStore ps = storeBuffer_.front();
    storeBuffer_.pop_front();
    mem_.store(hart_, ps.vaddr, ps.paddr, now_);
    auto it = inflightStores_.find(ps.paddr & ~7ULL);
    if (it != inflightStores_.end()) {
        auto &v = it->second;
        v.erase(std::remove(v.begin(), v.end(), ps.seq), v.end());
        if (v.empty())
            inflightStores_.erase(it);
    }
    if (storeHook_)
        storeHook_({hart_, ps.paddr, ps.data, ps.size});
    if (trace_)
        trace_->record(obs::Ev::StoreDrain, now_, ps.vaddr, ps.data,
                       ps.size, static_cast<uint8_t>(hart_));
    return true;
}

unsigned
Core::doCommit()
{
    unsigned committed = 0;
    while (committed < cfg_.commitWidth && !rob_.empty()) {
        Rec &rec = ring(rob_.front());
        if (rec.completedAt == 0 || rec.completedAt > now_)
            break;
        if (rec.isStore) {
            // Store data must be ready (split STA/STD) and the store
            // buffer must have room.
            if (!srcReady(rec.storeDataSrc))
                break;
            if (!rec.probe.skip &&
                storeBuffer_.size() >= cfg_.storeBufferSize)
                break;
        }

        if (rec.isStore && !rec.probe.skip) {
            storeBuffer_.push_back({rec.memVaddr, rec.memPaddr,
                                    rec.probe.memData, rec.memSize,
                                    rec.seq, now_ + 4});
            ++perf_.stores;
        } else if (rec.isStore) {
            // MMIO stores never enter the store buffer; drop them from
            // the in-flight set at commit.
            auto it = inflightStores_.find(rec.memPaddr & ~7ULL);
            if (it != inflightStores_.end()) {
                auto &v = it->second;
                v.erase(std::remove(v.begin(), v.end(), rec.seq),
                        v.end());
                if (v.empty())
                    inflightStores_.erase(it);
            }
        }

        if (rec.isLoad && faultMask_ && !rec.probe.skip) {
            // DiffTest demo: corrupt one committed load value (the
            // register view and the memory-data view consistently, as
            // a real datapath bug would).
            rec.probe.rdValue ^= faultMask_;
            rec.probe.memData ^= faultMask_;
            faultMask_ = 0;
        }

        if (commitFaultMask_ && rec.probe.rdWritten) {
            // Test-only fault hook: the DUT-visible committed register
            // value is corrupted; the oracle stays correct, so DiffTest
            // must flag this very commit.
            rec.probe.rdValue ^= commitFaultMask_;
            commitFaultMask_ = 0;
            if (trace_)
                trace_->record(obs::Ev::FaultInject, now_, rec.pc,
                               rec.probe.rdValue, 0,
                               static_cast<uint8_t>(hart_));
        }

        trainPredictors(rec);
        // Trace the commit before the hook runs: DiffTest checks the
        // probe inside the hook and snapshots the trace window at the
        // first mismatch, so the divergent commit must already be in
        // the ring.
        if (trace_)
            trace_->record(obs::Ev::Commit, now_, rec.pc,
                           rec.probe.rdValue, rec.probe.rd,
                           static_cast<uint8_t>(hart_));
        if (commitHook_)
            commitHook_(rec.probe);
        if (commitBatchHook_) {
            if (cfg_.model.batchCommit)
                commitBatch_.push_back(rec.probe);
            else
                commitBatchHook_(&rec.probe, 1);
        }

        if (rec.isLoad)
            --lqUsed_;
        if (rec.isStore)
            --sqUsed_;
        if (!rec.eliminated) {
            if (writesIntRd(rec.di) && !rec.trapped)
                --intPrfUsed_;
            else if (!rec.trapped && writesFpRd(rec.di.op))
                --fpPrfUsed_;
        }
        // Clear the rename map if this instruction is still the
        // youngest producer of its destination.
        if (!rec.trapped) {
            if (writesIntRd(rec.di) &&
                renameMap_[srcSlot(rec.di.rd, false)] == rec.seq)
                renameMap_[srcSlot(rec.di.rd, false)] = 0;
            else if (writesFpRd(rec.di.op) &&
                     renameMap_[srcSlot(rec.di.rd, true)] == rec.seq)
                renameMap_[srcSlot(rec.di.rd, true)] = 0;
        }

        lastCommittedSeq_ = rec.seq;
        ++perf_.instrs;
        ++committed;

        if (rec.serialize) {
            fetchResumeAt_ = std::max(
                fetchResumeAt_,
                now_ + (rec.trapped ? cfg_.trapPenalty : 2));
            if (rec.di.op == Op::SfenceVma)
                mem_.flushTlbs(hart_);
        }

        rob_.pop_front();
    }
    if (!commitBatch_.empty()) {
        // One delivery per commit group, probes in program order —
        // the same stream the per-instruction mode produces (doCommit
        // never aborts mid-group on a checker verdict either way).
        commitBatchHook_(commitBatch_.data(),
                         static_cast<unsigned>(commitBatch_.size()));
        commitBatch_.clear();
    }
    return committed;
}

void
Core::classifyCycle(unsigned committed)
{
    // Exclusive attribution: exactly one bucket per cycle, so the
    // buckets sum to perf_.cycles by construction. Priority follows
    // the top-down method: retiring wins; otherwise blame the oldest
    // in-flight instruction; an empty window is the frontend's fault
    // unless fetch is deliberately parked behind a mispredicted branch
    // (bad speculation) or a serializing instruction (core-bound).
    if (committed > 0) {
        ++perf_.tdRetiring;
    } else if (!rob_.empty()) {
        const Rec &head = ring(rob_.front());
        if (head.isLoad || head.isStore)
            ++perf_.tdBackendMem;
        else
            ++perf_.tdBackendCore;
    } else if (mispredictWaitSeq_ != 0) {
        ++perf_.tdBadSpec;
    } else if (serializeWaitSeq_ != 0) {
        ++perf_.tdBackendCore;
    } else {
        ++perf_.tdFrontend;
    }
}

Cycle
Core::nextEventAt() const
{
    // Called after now_ advanced to the next unexecuted cycle: the
    // earliest event at cycle >= now_ is the first cycle any stage
    // predicate can flip (events < now_ already fired or are
    // permanently-true thresholds). Every readiness test in the model
    // is a threshold comparison against a time frozen before the idle
    // stretch began, so every cycle before that event replays the
    // just-executed idle tick verbatim.
    Cycle best = 0;
    auto consider = [&](Cycle c) {
        if (c >= now_ && (best == 0 || c < best))
            best = c;
    };
    if (cfg_.model.bitsetSched) {
        // All pending completions live in the event heap or the
        // next-cycle lane (whose entries are due exactly at now_ + 1).
        // The lane is in fact always empty here — scheduling into it
        // requires an issue this tick, which defeats the idle check —
        // but considering it keeps this function correct on its own.
        if (!nextCycleQ_.empty())
            consider(now_ + 1);
        if (!compHeap_.empty())
            consider(compHeap_.front().first);
    } else {
        for (size_t i = 0, n = rob_.size(); i < n; ++i)
            consider(ring(rob_[i]).completedAt);
    }
    if (!fetchBuffer_.empty())
        consider(ring(fetchBuffer_.front()).fetchReadyAt);
    consider(fetchResumeAt_);
    if (!storeBuffer_.empty())
        consider(storeBuffer_.front().drainableAt);
    for (unsigned ft = 0; ft < N_FU; ++ft)
        for (Cycle c : fuBusyUntil_[ft])
            consider(c);
    return best;
}

void
Core::applyIdleDelta(Cycle extra)
{
    // The idle tick just executed bumped only counters, by amounts
    // that are a pure function of state this tick did not change —
    // replicate those per-cycle deltas over the skipped stretch in
    // closed form. PerfCounters is a plain array of u64 lanes, so this
    // covers every present and future counter (cycles, stall splits,
    // readyHist, the top-down buckets) without naming them.
    static_assert(sizeof(PerfCounters) % sizeof(uint64_t) == 0,
                  "PerfCounters must stay u64-lane shaped for "
                  "skip-ahead delta replication");
    static_assert(std::is_trivially_copyable_v<PerfCounters>,
                  "PerfCounters must stay trivially copyable");
    auto *cur = reinterpret_cast<uint64_t *>(&perf_);
    auto *prev = reinterpret_cast<const uint64_t *>(&idleSnap_);
    constexpr size_t lanes = sizeof(PerfCounters) / sizeof(uint64_t);
    for (size_t i = 0; i < lanes; ++i)
        cur[i] += extra * (cur[i] - prev[i]);
    now_ += extra;
    skippedCycles_ += extra;
    ++skipJumps_;
}

Cycle
Core::tick(Cycle budget)
{
    if (cfg_.model.bitsetSched)
        drainCompletions();

    // Snapshotting PerfCounters every tick would tax busy (compute-
    // bound) stretches that never skip, so the snapshot is only armed
    // once the previous tick already proved idle: each idle stretch
    // pays one plain verification tick up front, busy ticks pay
    // nothing. Host-only heuristic — skipping remains gated on the
    // full idle re-check below, so timing is unaffected.
    bool wantSkip = skipEnabled_ && budget > 1 && lastTickIdle_;
    if (wantSkip)
        idleSnap_ = perf_;
    uint64_t preSeq = nextSeq_;
    size_t preRob = rob_.size();
    size_t preFb = fetchBuffer_.size();
    size_t preSb = storeBuffer_.size();
    uint64_t preMw = mispredictWaitSeq_;
    uint64_t preSw = serializeWaitSeq_;
    Cycle preResume = fetchResumeAt_;

    unsigned committed = doCommit();
    classifyCycle(committed);
    bool drained = drainStoreBuffer();
    unsigned issued = doIssue();
    doDispatch();
    doFetch();
    ++now_;
    ++perf_.cycles;

    // Idle detection: nothing moved and no stall bookkeeping changed,
    // so until the next timed event every cycle is a verbatim replay
    // of this one (counter deltas included).
    bool idle = committed == 0 && issued == 0 && !drained &&
                nextSeq_ == preSeq && rob_.size() == preRob &&
                fetchBuffer_.size() == preFb &&
                storeBuffer_.size() == preSb &&
                mispredictWaitSeq_ == preMw &&
                serializeWaitSeq_ == preSw &&
                fetchResumeAt_ == preResume;
    lastTickIdle_ = idle;
    if (!wantSkip || !idle)
        return 1;

    Cycle next = nextEventAt();
    if (next <= now_)
        return 1; // fully drained or waiting on nothing timed
    Cycle extra = std::min(next - now_, budget - 1);
    applyIdleDelta(extra);
    return 1 + extra;
}

} // namespace minjie::xs
