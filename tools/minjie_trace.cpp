/**
 * @file
 * minjie-trace: the observability front door.
 *
 *   minjie-trace record --workload coremark --iters 200 --out run.mjt
 *   minjie-trace record --engine nemu --workload sum --out nemu.mjt
 *   minjie-trace report run.mjt
 *   minjie-trace topdown run.mjt
 *   minjie-trace diff before.mjt after.mjt
 *   minjie-trace chrome run.mjt run.json
 *
 * `record` runs one workload with the counter tree and the ring-buffer
 * tracer attached and writes a .mjt artifact; `report` renders the
 * counter tree, the Figure 15 ready distribution and the top-down CPI
 * stack; `diff` compares two runs counter by counter; `chrome`
 * converts an artifact to Chrome trace_event JSON for chrome://tracing
 * or ui.perfetto.dev.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "archdb/archdb.h"
#include "difftest/difftest.h"
#include "iss/system.h"
#include "nemu/nemu.h"
#include "obs/collect.h"
#include "obs/serialize.h"
#include "obs/topdown.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

using namespace minjie;
namespace wl = minjie::workload;

namespace {

struct Options
{
    std::string engine = "xiangshan"; // xiangshan|nemu
    std::string config = "nh";
    std::string workload = "coremark";
    uint64_t iters = 200;
    InstCount maxInstrs = 5'000'000;
    Cycle maxCycles = 2'000'000'000;
    size_t traceCap = 4096;
    bool difftest = false;
    bool archdb = false;
    std::string out = "run.mjt";
    std::string chromeOut;
};

void
usage()
{
    std::printf(
        "minjie-trace <record|report|topdown|diff|chrome> [options]\n"
        "record options:\n"
        "  --engine E     xiangshan|nemu (default xiangshan)\n"
        "  --config C     nh|yqh|gem5ish (xiangshan only)\n"
        "  --workload W   coremark|memstress|sum|sv39|<SPEC proxy>\n"
        "  --iters N      workload iterations (default 200)\n"
        "  --max-instrs N instruction budget (default 5M)\n"
        "  --trace-cap N  ring-buffer capacity in events (default 4096)\n"
        "  --difftest     co-simulate against a NEMU REF (xiangshan)\n"
        "  --archdb       print the ArchDB report after the run\n"
        "  --out FILE     .mjt artifact path (default run.mjt)\n"
        "  --chrome FILE  also write Chrome trace_event JSON\n"
        "report/topdown:  minjie-trace report RUN.mjt\n"
        "diff:            minjie-trace diff A.mjt B.mjt\n"
        "chrome:          minjie-trace chrome RUN.mjt [OUT.json]\n");
}

wl::Program
pickWorkload(const Options &opt, bool &ok)
{
    ok = true;
    if (opt.workload == "coremark")
        return wl::coremarkProxy(opt.iters);
    if (opt.workload == "memstress")
        return wl::memStressProgram(opt.iters, 16);
    if (opt.workload == "sum")
        return wl::sumProgram(opt.iters);
    if (opt.workload == "sv39")
        return wl::sv39Program();
    for (const auto &s : wl::specIntSuite())
        if (opt.workload == s.name)
            return wl::buildProxy(s, opt.iters);
    for (const auto &s : wl::specFpSuite())
        if (opt.workload == s.name)
            return wl::buildProxy(s, opt.iters);
    ok = false;
    return {};
}

bool
readFile(const std::string &path, std::string &bytes)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::binary);
    f.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
    f.close();
    return static_cast<bool>(f);
}

bool
loadArtifact(const std::string &path, obs::RunArtifact &art)
{
    std::string bytes;
    if (!readFile(path, bytes)) {
        std::fprintf(stderr, "minjie-trace: cannot read %s\n",
                     path.c_str());
        return false;
    }
    if (!obs::parseMjt(bytes, art)) {
        std::fprintf(stderr, "minjie-trace: %s is not a .mjt artifact\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** Core prefixes ("core0", "dut", ...) that carry top-down buckets. */
std::vector<std::string>
topdownPrefixes(const obs::CounterSnapshot &snap)
{
    std::vector<std::string> out;
    const std::string leaf = ".topdown.retiring";
    for (const auto &[k, v] : snap.values) {
        if (k.size() > leaf.size() &&
            k.compare(k.size() - leaf.size(), leaf.size(), leaf) == 0)
            out.push_back(k.substr(0, k.size() - leaf.size()));
    }
    return out;
}

void
printTopdown(const obs::RunArtifact &art)
{
    for (const auto &prefix : topdownPrefixes(art.counters)) {
        obs::CpiStack stack =
            obs::CpiStack::fromCounters(art.counters, prefix);
        std::string title = art.runLabel.empty()
                                ? prefix
                                : art.runLabel + " " + prefix;
        std::printf("%s", stack.table(title).c_str());
    }
}

void
printReadyHist(const obs::CounterSnapshot &snap,
               const std::string &prefix)
{
    uint64_t samples = snap.get(prefix + ".ready_hist.samples");
    if (!samples)
        return;
    std::printf("ready-instruction distribution (%s, Figure 15):\n",
                prefix.c_str());
    for (unsigned b = 0;; ++b) {
        std::string key =
            prefix + ".ready_hist.bucket" + std::to_string(b);
        if (!snap.has(key))
            break;
        uint64_t v = snap.get(key);
        double pct = 100.0 * static_cast<double>(v) /
                     static_cast<double>(samples);
        std::printf("  %2u%s %10llu  %5.1f%%  ", b,
                    b == 8 ? "+" : " ",
                    static_cast<unsigned long long>(v), pct);
        for (unsigned i = 0; i < static_cast<unsigned>(pct * 0.4); ++i)
            std::printf("#");
        std::printf("\n");
    }
}

int
cmdRecordXiangshan(const Options &opt, const wl::Program &prog,
                   obs::RunArtifact &art)
{
    xs::CoreConfig cfg = opt.config == "yqh" ? xs::CoreConfig::yqh()
                         : opt.config == "gem5ish"
                             ? xs::CoreConfig::gem5ish()
                             : xs::CoreConfig::nh();
    xs::Soc soc(cfg);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);

    obs::TraceBuffer trace(opt.traceCap);
    if (obs::enabled()) {
        for (unsigned c = 0; c < soc.numCores(); ++c)
            soc.core(c).setTrace(&trace);
        obs::attachCacheTrace(soc.mem(), trace);
    }

    std::unique_ptr<difftest::DiffTest> dt;
    if (opt.difftest) {
        dt = std::make_unique<difftest::DiffTest>(soc);
        for (const auto &seg : prog.segments)
            dt->loadRefMemory(seg.base, seg.bytes.data(),
                              seg.bytes.size());
        dt->resetRefs(prog.entry);
        dt->attachTrace(&trace);
    }

    Cycle cycle = 0;
    while (cycle < opt.maxCycles &&
           soc.core(0).perf().instrs < opt.maxInstrs) {
        soc.system().clint.tick();
        bool allDone = true;
        Cycle consumed = 1;
        for (unsigned c = 0; c < soc.numCores(); ++c) {
            if (!soc.core(c).done()) {
                consumed = std::max(
                    consumed, soc.core(c).tick(opt.maxCycles - cycle));
                allDone = false;
            }
        }
        cycle += consumed;
        if (consumed > 1)
            soc.system().clint.tick(consumed - 1);
        if (dt && !dt->ok()) {
            std::printf("[difftest] MISMATCH: %s\n",
                        dt->failures().front().c_str());
            break;
        }
        if (allDone)
            break;
    }

    obs::CounterGroup root;
    if (obs::enabled())
        obs::collectSoc(root, soc);
    art.counters = root.snapshot();
    art.events = (dt && !dt->ok() && !dt->divergenceWindow().empty())
                     ? dt->divergenceWindow()
                     : trace.events();

    const auto &p = soc.core(0).perf();
    std::printf("[xiangshan-%s] %llu instrs, %llu cycles, ipc %.3f\n",
                cfg.name.c_str(),
                static_cast<unsigned long long>(p.instrs),
                static_cast<unsigned long long>(p.cycles), p.ipc());
    return 0;
}

int
cmdRecordNemu(const Options &opt, const wl::Program &prog,
              obs::RunArtifact &art)
{
    iss::System sys(256);
    prog.loadInto(sys.dram);
    nemu::Nemu engine(sys.bus, sys.dram, 0, prog.entry);
    engine.setHaltFn([&] { return sys.simctrl.exited(); });

    obs::TraceBuffer trace(opt.traceCap);
    uint64_t blocks = 0;
    if (obs::enabled()) {
        engine.setBlockHook([&](Addr pc, uint32_t len) {
            trace.record(obs::Ev::Block, blocks++, pc, len);
        });
    }

    // The block-boundary hook fires only on the stepping path, so
    // trace-enabled runs step instruction by instruction; untraced
    // runs keep the threaded-code fast path.
    iss::RunResult r;
    if (obs::enabled()) {
        while (r.executed < opt.maxInstrs) {
            if (engine.step().pending())
                r.trapped = true;
            ++r.executed;
            if (sys.simctrl.exited()) {
                r.halted = true;
                break;
            }
        }
    } else {
        r = engine.run(opt.maxInstrs);
    }

    obs::CounterGroup root;
    if (obs::enabled()) {
        obs::collectNemu(root, engine);
        root.set("instrs", r.executed);
    }
    art.counters = root.snapshot();
    art.events = trace.events();

    std::printf("[nemu] %llu instructions%s\n",
                static_cast<unsigned long long>(r.executed),
                r.halted ? "" : " [budget reached]");
    return 0;
}

int
cmdRecord(const Options &opt)
{
    bool ok;
    wl::Program prog = pickWorkload(opt, ok);
    if (!ok) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     opt.workload.c_str());
        return 2;
    }

    obs::RunArtifact art;
    art.runLabel = opt.workload + "@" +
                   (opt.engine == "nemu" ? "nemu" : opt.config);

    int rc = opt.engine == "nemu" ? cmdRecordNemu(opt, prog, art)
                                  : cmdRecordXiangshan(opt, prog, art);
    if (rc)
        return rc;

    if (!writeFile(opt.out, obs::serializeMjt(art))) {
        std::fprintf(stderr, "minjie-trace: cannot write %s\n",
                     opt.out.c_str());
        return 2;
    }
    std::printf("wrote %s (%zu counters, %zu events)\n",
                opt.out.c_str(), art.counters.values.size(),
                art.events.size());

    if (!opt.chromeOut.empty()) {
        if (!writeFile(opt.chromeOut, obs::toChromeJson(art))) {
            std::fprintf(stderr, "minjie-trace: cannot write %s\n",
                         opt.chromeOut.c_str());
            return 2;
        }
        std::printf("wrote %s\n", opt.chromeOut.c_str());
    }

    if (opt.archdb) {
        archdb::ArchDB db;
        obs::exportToArchDB(db, art.counters);
        obs::exportTraceToArchDB(db, art.events);
        std::printf("%s", db.report().c_str());
    }

    printTopdown(art);
    return 0;
}

int
cmdReport(const std::string &path)
{
    obs::RunArtifact art;
    if (!loadArtifact(path, art))
        return 2;

    std::printf("run: %s\n", art.runLabel.c_str());
    std::printf("counters (%zu):\n", art.counters.values.size());
    for (const auto &[k, v] : art.counters.values)
        std::printf("  %-44s %llu\n", k.c_str(),
                    static_cast<unsigned long long>(v));

    std::printf("trace: %zu events\n", art.events.size());
    for (const auto &prefix : topdownPrefixes(art.counters))
        printReadyHist(art.counters, prefix);
    printTopdown(art);
    return 0;
}

int
cmdTopdown(const std::string &path)
{
    obs::RunArtifact art;
    if (!loadArtifact(path, art))
        return 2;
    printTopdown(art);
    return 0;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB)
{
    obs::RunArtifact a, b;
    if (!loadArtifact(pathA, a) || !loadArtifact(pathB, b))
        return 2;

    std::printf("diff: %s (A) vs %s (B)\n", a.runLabel.c_str(),
                b.runLabel.c_str());
    obs::CounterSnapshot all = a.counters;
    all.merge(b.counters); // union of keys (values unused below)
    unsigned changed = 0;
    for (const auto &[k, unused] : all.values) {
        (void)unused;
        uint64_t va = a.counters.get(k);
        uint64_t vb = b.counters.get(k);
        if (va == vb)
            continue;
        ++changed;
        int64_t d = static_cast<int64_t>(vb) - static_cast<int64_t>(va);
        std::printf("  %-44s %12llu -> %-12llu (%+lld)\n", k.c_str(),
                    static_cast<unsigned long long>(va),
                    static_cast<unsigned long long>(vb),
                    static_cast<long long>(d));
    }
    std::printf("%u counters differ\n", changed);
    return 0;
}

int
cmdChrome(const std::string &inPath, const std::string &outPath)
{
    obs::RunArtifact art;
    if (!loadArtifact(inPath, art))
        return 2;
    std::string json = obs::toChromeJson(art);
    if (outPath.empty() || outPath == "-") {
        std::printf("%s\n", json.c_str());
        return 0;
    }
    if (!writeFile(outPath, json)) {
        std::fprintf(stderr, "minjie-trace: cannot write %s\n",
                     outPath.c_str());
        return 2;
    }
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];

    if (cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }

    std::vector<std::string> positional;
    Options opt;
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--engine")
            opt.engine = next();
        else if (a == "--config")
            opt.config = next();
        else if (a == "--workload")
            opt.workload = next();
        else if (a == "--iters")
            opt.iters = std::strtoull(next(), nullptr, 0);
        else if (a == "--max-instrs")
            opt.maxInstrs = std::strtoull(next(), nullptr, 0);
        else if (a == "--trace-cap")
            opt.traceCap = std::strtoull(next(), nullptr, 0);
        else if (a == "--difftest")
            opt.difftest = true;
        else if (a == "--archdb")
            opt.archdb = true;
        else if (a == "--out")
            opt.out = next();
        else if (a == "--chrome")
            opt.chromeOut = next();
        else if (!a.empty() && a[0] != '-')
            positional.push_back(a);
        else {
            usage();
            return 2;
        }
    }

    if (cmd == "record")
        return cmdRecord(opt);
    if (cmd == "report" && positional.size() == 1)
        return cmdReport(positional[0]);
    if (cmd == "topdown" && positional.size() == 1)
        return cmdTopdown(positional[0]);
    if (cmd == "diff" && positional.size() == 2)
        return cmdDiff(positional[0], positional[1]);
    if (cmd == "chrome" && !positional.empty())
        return cmdChrome(positional[0],
                         positional.size() > 1 ? positional[1] : "");

    usage();
    return 2;
}
