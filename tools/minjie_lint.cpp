/**
 * @file
 * minjie-lint: static invariant analyzer for the co-simulation stack.
 *
 * Scans src/ and tools/ for violations of the repo's determinism,
 * probe-accessor, fork-safety, and layout contracts (see
 * src/analysis/rule.h for the rule families).
 *
 * Exit codes: 0 clean, 1 findings (or stale baseline entries),
 * 2 usage / I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/baseline.h"
#include "analysis/engine.h"
#include "analysis/report.h"
#include "common/clock.h"
#include "common/jsonw.h"

namespace {

using namespace minjie::analysis;

void
usage(FILE *to)
{
    std::fprintf(to,
        "usage: minjie-lint [options]\n"
        "  --root DIR          repo root to scan (default: .)\n"
        "  --scan DIR          scan this dir under root (repeatable;\n"
        "                      default: src tools)\n"
        "  --exclude PREFIX    skip files under this repo-relative "
                              "prefix\n"
        "  --format FMT        human | json | sarif (default: human)\n"
        "  --output FILE       write the report here instead of stdout\n"
        "  --baseline FILE     suppress findings recorded in FILE\n"
        "  --update-baseline   rewrite the baseline from current "
                              "findings\n"
        "  --baseline-budget N fail when the baseline holds more than "
                              "N entries\n"
        "  --cache FILE        reuse per-file results for unchanged "
                              "files\n"
        "  --bench-out FILE    time a cold and an incremental run, "
                              "write JSON\n"
        "  --bench-gate PCT    with --bench-out: fail when the "
                              "incremental\n"
        "                      run exceeds PCT%% of the cold run\n"
        "  --rule ID           run only this rule (repeatable)\n"
        "  --all-scopes        apply every rule to every file\n"
        "  --list-rules        print the rule registry and exit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    EngineConfig cfg;
    cfg.root = ".";
    cfg.scanDirs.clear();
    std::string format = "human";
    std::string output;
    std::string benchOut;
    long benchGatePct = -1;
    long baselineBudget = -1;
    bool updateBaseline = false;
    bool listRules = false;

    auto needArg = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "minjie-lint: %s needs an argument\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--root")) {
            cfg.root = needArg(i);
        } else if (!std::strcmp(a, "--scan")) {
            cfg.scanDirs.push_back(needArg(i));
        } else if (!std::strcmp(a, "--exclude")) {
            cfg.excludePrefixes.push_back(needArg(i));
        } else if (!std::strcmp(a, "--format")) {
            format = needArg(i);
        } else if (!std::strcmp(a, "--output")) {
            output = needArg(i);
        } else if (!std::strcmp(a, "--baseline")) {
            cfg.baselinePath = needArg(i);
        } else if (!std::strcmp(a, "--update-baseline")) {
            updateBaseline = true;
        } else if (!std::strcmp(a, "--baseline-budget")) {
            baselineBudget = std::strtol(needArg(i), nullptr, 10);
        } else if (!std::strcmp(a, "--cache")) {
            cfg.cachePath = needArg(i);
        } else if (!std::strcmp(a, "--bench-out")) {
            benchOut = needArg(i);
        } else if (!std::strcmp(a, "--bench-gate")) {
            benchGatePct = std::strtol(needArg(i), nullptr, 10);
        } else if (!std::strcmp(a, "--rule")) {
            cfg.onlyRules.push_back(needArg(i));
        } else if (!std::strcmp(a, "--all-scopes")) {
            cfg.ignoreScopes = true;
        } else if (!std::strcmp(a, "--list-rules")) {
            listRules = true;
        } else if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "minjie-lint: unknown option %s\n", a);
            usage(stderr);
            return 2;
        }
    }
    if (cfg.scanDirs.empty())
        cfg.scanDirs = {"src", "tools"};

    Engine engine(cfg);

    if (listRules) {
        for (const auto &rule : engine.rules()) {
            std::printf("%-12s %s\n",
                        std::string(rule->id()).c_str(),
                        std::string(rule->summary()).c_str());
            for (const std::string &dir : rule->scope())
                std::printf("             scope: %s\n", dir.c_str());
        }
        return 0;
    }

    EngineResult res;
    if (updateBaseline) {
        // Collect unbaselined findings, then record them all.
        std::string keep = cfg.baselinePath;
        cfg.baselinePath.clear();
        Engine fresh(cfg);
        res = fresh.run();
        if (keep.empty()) {
            std::fprintf(stderr,
                         "minjie-lint: --update-baseline needs "
                         "--baseline FILE\n");
            return 2;
        }
        if (!Baseline::write(keep, res.findings)) {
            std::fprintf(stderr,
                         "minjie-lint: cannot write baseline %s\n",
                         keep.c_str());
            return 2;
        }
        std::printf("minjie-lint: recorded %zu finding%s into %s\n",
                    res.findings.size(),
                    res.findings.size() == 1 ? "" : "s", keep.c_str());
        return 0;
    }

    if (!benchOut.empty()) {
        // Cold/incremental benchmark: drop the cache, run once to
        // repopulate it, run again warm. The warm run's result feeds
        // the normal report path below (findings are identical).
        if (cfg.cachePath.empty()) {
            std::fprintf(stderr,
                         "minjie-lint: --bench-out needs --cache\n");
            return 2;
        }
        std::remove(cfg.cachePath.c_str());
        minjie::Stopwatch sw;
        EngineResult cold = engine.run();
        uint64_t coldUs = sw.elapsedUs();
        sw.reset();
        res = engine.run();
        uint64_t warmUs = sw.elapsedUs();

        minjie::JsonWriter jw;
        jw.beginObject();
        jw.key("files").value(res.filesScanned);
        jw.key("cold_files_lexed").value(cold.filesLexed);
        jw.key("incremental_files_lexed").value(res.filesLexed);
        jw.key("cold_us").value(coldUs);
        jw.key("incremental_us").value(warmUs);
        jw.key("incremental_over_cold")
            .value(coldUs == 0 ? 0.0
                               : static_cast<double>(warmUs) /
                                     static_cast<double>(coldUs));
        jw.endObject();
        FILE *bf = std::fopen(benchOut.c_str(), "w");
        if (!bf) {
            std::fprintf(stderr, "minjie-lint: cannot open %s\n",
                         benchOut.c_str());
            return 2;
        }
        std::fputs(jw.str().c_str(), bf);
        std::fclose(bf);
        std::printf("minjie-lint: cold %llu us, incremental %llu us "
                    "-> %s\n",
                    static_cast<unsigned long long>(coldUs),
                    static_cast<unsigned long long>(warmUs),
                    benchOut.c_str());
        if (benchGatePct >= 0 &&
            warmUs * 100 > coldUs * static_cast<uint64_t>(benchGatePct)) {
            std::fprintf(stderr,
                         "minjie-lint: incremental run is %.0f%% of "
                         "cold, gate is %ld%% — the cache stopped "
                         "paying for itself\n",
                         coldUs == 0 ? 0.0
                                     : 100.0 * static_cast<double>(warmUs) /
                                           static_cast<double>(coldUs),
                         benchGatePct);
            return 1;
        }
    } else {
        res = engine.run();
    }

    // Baseline ratchet: the budget caps how many findings may hide in
    // the baseline file. CI pins 0, so growing the baseline instead of
    // fixing (or justifying an inline allow) fails the build.
    if (baselineBudget >= 0 && !cfg.baselinePath.empty()) {
        Baseline bl;
        if (!bl.load(cfg.baselinePath)) {
            std::fprintf(stderr, "minjie-lint: cannot read baseline %s\n",
                         cfg.baselinePath.c_str());
            return 2;
        }
        if (bl.size() > static_cast<size_t>(baselineBudget)) {
            std::fprintf(stderr,
                         "minjie-lint: baseline holds %zu entries, "
                         "budget is %ld — fix the findings or raise "
                         "the budget with justification\n",
                         bl.size(), baselineBudget);
            return 1;
        }
    }

    std::string report;
    if (format == "human")
        report = renderHuman(res);
    else if (format == "json")
        report = renderJson(res);
    else if (format == "sarif")
        report = renderSarif(res, engine);
    else {
        std::fprintf(stderr, "minjie-lint: unknown format %s\n",
                     format.c_str());
        return 2;
    }

    if (output.empty()) {
        std::fputs(report.c_str(), stdout);
    } else {
        FILE *f = std::fopen(output.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "minjie-lint: cannot open %s\n",
                         output.c_str());
            return 2;
        }
        std::fputs(report.c_str(), f);
        std::fclose(f);
        // Keep the human summary visible even when redirecting.
        if (format != "human")
            std::printf("minjie-lint: %zu finding%s -> %s\n",
                        res.findings.size(),
                        res.findings.size() == 1 ? "" : "s",
                        output.c_str());
    }

    return res.findings.empty() && res.staleBaseline.empty() ? 0 : 1;
}
