/**
 * @file
 * minjie-sim: the command-line front door of the platform.
 *
 *   minjie-sim --engine nemu --workload coremark --iters 2000
 *   minjie-sim --engine xiangshan --config nh --workload 458.sjeng \
 *              --difftest --lightsss 100000
 *   minjie-sim --list
 *
 * Runs one workload on one engine, optionally under DiffTest
 * co-simulation with LightSSS snapshots, and prints a performance and
 * verification summary — the single-run analogue of the paper's
 * "launch the RTL-simulation and the tools are automatically invoked"
 * workflow (Section III-E).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "checkpoint/generator.h"
#include "common/clock.h"
#include "difftest/difftest.h"
#include "iss/interp.h"
#include "iss/system.h"
#include "lightsss/lightsss.h"
#include "nemu/nemu.h"
#include "sample/engine.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

using namespace minjie;
namespace wl = minjie::workload;

namespace {

struct Options
{
    std::string engine = "nemu"; // nemu|spike|dromajo|tci|xiangshan
    std::string config = "nh";   // nh|yqh|gem5ish (xiangshan only)
    std::string workload = "coremark";
    uint64_t iters = 1000;
    InstCount maxInstrs = 50'000'000;
    bool difftest = false;
    Cycle lightsssInterval = 0;
    uint64_t faultAfter = 0; // inject a load fault (difftest demo)
    xs::ModelOpts model;     // --xs-no-* fast-path ablations

    // Sampled simulation (--sample): SimPoint checkpoints evaluated
    // across forked workers instead of one full detailed run.
    bool sample = false;
    unsigned workers = 1;
    uint64_t warmup = 0;
    uint64_t measure = 20'000;
    uint64_t interval = 50'000;
    unsigned maxK = 4;
    std::string packOut; // write the .mjk pack here
    std::string packIn;  // evaluate an existing pack (skips profiling)
};

void
usage()
{
    std::printf(
        "minjie-sim [options]\n"
        "  --engine E     nemu|spike|dromajo|tci|xiangshan (default nemu)\n"
        "  --config C     nh|yqh|gem5ish (xiangshan engine only)\n"
        "  --workload W   coremark|memstress|sum|sv39|<SPEC proxy name>\n"
        "  --iters N      workload iterations (default 1000)\n"
        "  --max-instrs N instruction budget (default 50M)\n"
        "  --difftest     co-simulate against a NEMU REF (xiangshan)\n"
        "  --lightsss N   fork a snapshot every N cycles (xiangshan)\n"
        "  --inject-fault corrupt one load (exercises the checkers)\n"
        "  --xs-no-bitset reference scan-based scheduling (xiangshan)\n"
        "  --xs-no-skip   disable event-driven idle-cycle skipping\n"
        "  --xs-no-batch  per-instruction commit probe delivery\n"
        "  --sample       SimPoint sampled evaluation (fork-fanout)\n"
        "  --workers N    forked slice workers (default 1)\n"
        "  --warmup M     functional-warmup instructions per slice\n"
        "  --measure N    detailed window per slice (default 20000)\n"
        "  --interval N   SimPoint interval length (default 50000)\n"
        "  --max-k K      max SimPoint clusters (default 4)\n"
        "  --pack-out F   write the .mjk checkpoint pack to F\n"
        "  --pack-in F    evaluate an existing .mjk pack\n"
        "  --list         list available workloads\n");
}

wl::Program
pickWorkload(const Options &opt, bool &ok)
{
    ok = true;
    if (opt.workload == "coremark")
        return wl::coremarkProxy(opt.iters);
    if (opt.workload == "memstress")
        return wl::memStressProgram(opt.iters, 16);
    if (opt.workload == "sum")
        return wl::sumProgram(opt.iters);
    if (opt.workload == "sv39")
        return wl::sv39Program();
    for (const auto &s : wl::specIntSuite())
        if (opt.workload == s.name)
            return wl::buildProxy(s, opt.iters);
    for (const auto &s : wl::specFpSuite())
        if (opt.workload == s.name)
            return wl::buildProxy(s, opt.iters);
    ok = false;
    return {};
}

int
runInterpreter(const Options &opt, const wl::Program &prog)
{
    iss::System sys(256);
    prog.loadInto(sys.dram);

    std::unique_ptr<iss::Interp> engine;
    if (opt.engine == "nemu")
        engine = std::make_unique<nemu::Nemu>(sys.bus, sys.dram, 0,
                                              prog.entry);
    else if (opt.engine == "spike")
        engine = std::make_unique<iss::SpikeInterp>(sys.bus, 0,
                                                    prog.entry);
    else if (opt.engine == "dromajo")
        engine = std::make_unique<iss::DromajoInterp>(sys.bus, 0,
                                                      prog.entry);
    else
        engine = std::make_unique<iss::TciInterp>(sys.bus, 0, prog.entry);
    engine->setHaltFn([&] { return sys.simctrl.exited(); });

    Stopwatch sw;
    iss::RunResult r;
    if (auto *nemu = dynamic_cast<nemu::Nemu *>(engine.get()))
        r = nemu->run(opt.maxInstrs);
    else
        r = engine->run(opt.maxInstrs);
    double sec = sw.elapsedSec();

    std::printf("[%s] %llu instructions in %.3fs (%.1f MIPS)%s\n",
                opt.engine.c_str(),
                static_cast<unsigned long long>(r.executed), sec,
                sec > 0 ? static_cast<double>(r.executed) / sec / 1e6
                        : 0.0,
                r.halted ? "" : " [budget reached]");
    if (sys.simctrl.exited())
        std::printf("workload exit code: %llu\n",
                    static_cast<unsigned long long>(
                        sys.simctrl.exitCode()));
    return 0;
}

int
runXiangshan(const Options &opt, const wl::Program &prog)
{
    xs::CoreConfig cfg = opt.config == "yqh" ? xs::CoreConfig::yqh()
                         : opt.config == "gem5ish"
                             ? xs::CoreConfig::gem5ish()
                             : xs::CoreConfig::nh();
    cfg.model = opt.model;
    xs::Soc soc(cfg);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);

    std::unique_ptr<difftest::DiffTest> dt;
    if (opt.difftest) {
        dt = std::make_unique<difftest::DiffTest>(soc);
        for (const auto &seg : prog.segments)
            dt->loadRefMemory(seg.base, seg.bytes.data(),
                              seg.bytes.size());
        dt->resetRefs(prog.entry);
    }
    if (opt.faultAfter)
        soc.core(0).injectLoadFault(0x1000);

    lightsss::LightSSS sss(
        {opt.lightsssInterval ? opt.lightsssInterval : 1, 2,
         opt.lightsssInterval != 0});

    Stopwatch sw;
    Cycle cycle = 0;
    const Cycle maxCycles = 2'000'000'000;
    while (cycle < maxCycles &&
           soc.core(0).perf().instrs < opt.maxInstrs) {
        if (opt.lightsssInterval) {
            auto role = sss.tick(cycle);
            if (role == lightsss::LightSSS::Role::ReplayChild) {
                Logger::instance().setLevel(LogLevel::Debug);
                std::printf("[lightsss] replay child running to cycle "
                            "%llu\n",
                            static_cast<unsigned long long>(
                                sss.replayTargetCycle()));
            }
        }
        soc.system().clint.tick();
        bool allDone = true;
        Cycle consumed = 1;
        // LightSSS snapshots fork at loop-visible cycles only; with
        // skip-ahead the fork grid coarsens across idle stretches but
        // every forked state is still exact.
        Cycle budget = maxCycles - cycle;
        for (unsigned c = 0; c < soc.numCores(); ++c) {
            if (!soc.core(c).done()) {
                consumed = std::max(consumed, soc.core(c).tick(budget));
                allDone = false;
            }
        }
        cycle += consumed;
        if (consumed > 1)
            soc.system().clint.tick(consumed - 1);
        if (dt && !dt->ok()) {
            std::printf("[difftest] MISMATCH: %s\n",
                        dt->failures().front().c_str());
            std::printf("[difftest] last commits:\n");
            auto trace = dt->recentCommitTrace();
            size_t start = trace.size() > 8 ? trace.size() - 8 : 0;
            for (size_t i = start; i < trace.size(); ++i)
                std::printf("  %s\n", trace[i].c_str());
            if (opt.lightsssInterval && sss.triggerReplay(cycle))
                std::printf("[lightsss] debug replay completed\n");
            return 1;
        }
        if (allDone)
            break;
    }
    double sec = sw.elapsedSec();
    sss.discardAll();

    const auto &p = soc.core(0).perf();
    std::printf("[xiangshan-%s] %llu instrs, %llu cycles, ipc %.3f "
                "(%.0f KHz sim speed)\n",
                cfg.name.c_str(),
                static_cast<unsigned long long>(p.instrs),
                static_cast<unsigned long long>(p.cycles), p.ipc(),
                sec > 0 ? static_cast<double>(p.cycles) / sec / 1e3
                        : 0.0);
    std::printf("branches: %llu (mpki %.2f)  fused: %llu  moves "
                "eliminated: %llu\n",
                static_cast<unsigned long long>(p.branches), p.mpki(),
                static_cast<unsigned long long>(p.fusedPairs),
                static_cast<unsigned long long>(p.movesEliminated));
    if (dt)
        std::printf("[difftest] %llu commits checked, PASS\n",
                    static_cast<unsigned long long>(
                        dt->stats().commitsChecked));
    if (soc.system().simctrl.exited())
        std::printf("workload exit code: %llu\n",
                    static_cast<unsigned long long>(
                        soc.system().simctrl.exitCode()));
    return 0;
}

int
runSampledFlow(const Options &opt, const wl::Program &prog)
{
    xs::CoreConfig cfg = opt.config == "yqh" ? xs::CoreConfig::yqh()
                         : opt.config == "gem5ish"
                             ? xs::CoreConfig::gem5ish()
                             : xs::CoreConfig::nh();
    cfg.model = opt.model;

    sample::PackReader pack;
    if (!opt.packIn.empty()) {
        if (!pack.openFile(opt.packIn)) {
            std::fprintf(stderr, "cannot open pack '%s'\n",
                         opt.packIn.c_str());
            return 1;
        }
    } else {
        std::printf("[sample] profiling %s (interval %llu, max-k %u)\n",
                    opt.workload.c_str(),
                    static_cast<unsigned long long>(opt.interval),
                    opt.maxK);
        auto gen = checkpoint::generateCheckpoints(
            prog, opt.interval, opt.maxK, opt.maxInstrs);
        std::printf("[sample] %zu checkpoints from %llu instructions "
                    "(profile %.1f MIPS)\n",
                    gen.checkpoints.size(),
                    static_cast<unsigned long long>(gen.totalInsts),
                    gen.profileMips);
        auto bytes = sample::packFromGen(gen);
        if (bytes.empty()) {
            std::fprintf(stderr, "checkpoint generation failed\n");
            return 1;
        }
        if (!opt.packOut.empty()) {
            std::ofstream f(opt.packOut, std::ios::binary);
            f.write(reinterpret_cast<const char *>(bytes.data()),
                    static_cast<std::streamsize>(bytes.size()));
            if (!f) {
                std::fprintf(stderr, "cannot write pack '%s'\n",
                             opt.packOut.c_str());
                return 1;
            }
            std::printf("[sample] pack written to %s\n",
                        opt.packOut.c_str());
        }
        if (!pack.openMemory(std::move(bytes))) {
            std::fprintf(stderr, "pack parse failed\n");
            return 1;
        }
    }

    sample::SampleConfig scfg;
    scfg.workers = opt.workers;
    scfg.warmupInsts = opt.warmup;
    scfg.measureInsts = opt.measure;
    scfg.coreCfg = cfg;
    auto rep = sample::runSampled(pack, scfg);

    std::printf("[sample] pack: %zu checkpoints, %zu pooled pages, "
                "%.1f KiB\n",
                pack.count(), pack.poolPages(),
                static_cast<double>(pack.sizeBytes()) / 1024.0);
    for (size_t i = 0; i < rep.slices.size(); ++i) {
        const auto &s = rep.slices[i];
        std::printf("  slice %zu @%-10llu w=%llu/%llu  %s", i,
                    static_cast<unsigned long long>(pack.instCount(i)),
                    static_cast<unsigned long long>(pack.weightNum(i)),
                    static_cast<unsigned long long>(pack.weightDen()),
                    s.ok ? "" : "FAILED");
        if (s.ok)
            std::printf("%llu instrs / %llu cycles (ipc %.3f)",
                        static_cast<unsigned long long>(s.instrs),
                        static_cast<unsigned long long>(s.cycles),
                        s.cycles ? static_cast<double>(s.instrs) /
                                       static_cast<double>(s.cycles)
                                 : 0.0);
        std::printf("\n");
    }
    std::printf("[sample] weighted ipc %.4f (cpi %.4f), %u workers, "
                "%.3fs wall\n",
                rep.weightedIpc(), rep.weightedCpi(), opt.workers,
                rep.wallSec);
    std::printf("%s", rep.stack.table("weighted top-down").c_str());
    std::printf("[sample] top-down exact-sum: %s\n",
                rep.stack.sumsExactly() ? "PASS" : "FAIL");
    if (rep.failures) {
        std::printf("[sample] %u slice(s) failed\n", rep.failures);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--engine")
            opt.engine = next();
        else if (arg == "--config")
            opt.config = next();
        else if (arg == "--workload")
            opt.workload = next();
        else if (arg == "--iters")
            opt.iters = std::strtoull(next(), nullptr, 0);
        else if (arg == "--max-instrs")
            opt.maxInstrs = std::strtoull(next(), nullptr, 0);
        else if (arg == "--difftest")
            opt.difftest = true;
        else if (arg == "--lightsss")
            opt.lightsssInterval = std::strtoull(next(), nullptr, 0);
        else if (arg == "--inject-fault")
            opt.faultAfter = 1;
        else if (arg == "--sample")
            opt.sample = true;
        else if (arg == "--workers")
            opt.workers = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        else if (arg == "--warmup")
            opt.warmup = std::strtoull(next(), nullptr, 0);
        else if (arg == "--measure")
            opt.measure = std::strtoull(next(), nullptr, 0);
        else if (arg == "--interval")
            opt.interval = std::strtoull(next(), nullptr, 0);
        else if (arg == "--max-k")
            opt.maxK = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        else if (arg == "--pack-out")
            opt.packOut = next();
        else if (arg == "--pack-in")
            opt.packIn = next();
        else if (arg == "--xs-no-bitset")
            opt.model.bitsetSched = false;
        else if (arg == "--xs-no-skip")
            opt.model.skipAhead = false;
        else if (arg == "--xs-no-batch")
            opt.model.batchCommit = false;
        else if (arg == "--list") {
            std::printf("workloads: coremark memstress sum sv39");
            for (const auto &s : wl::specIntSuite())
                std::printf(" %s", s.name);
            for (const auto &s : wl::specFpSuite())
                std::printf(" %s", s.name);
            std::printf("\n");
            return 0;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    bool ok;
    auto prog = pickWorkload(opt, ok);
    if (!ok) {
        std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                     opt.workload.c_str());
        return 1;
    }

    if (opt.sample)
        return runSampledFlow(opt, prog);
    if (opt.engine == "xiangshan")
        return runXiangshan(opt, prog);
    return runInterpreter(opt, prog);
}
