/**
 * @file
 * minjie-campaign: parallel fuzz co-simulation campaign driver.
 *
 *   minjie-campaign --jobs 8 --seeds 2000
 *   minjie-campaign --jobs 8 --seeds 500 --difftest-pct 5
 *   minjie-campaign --seeds 200 --inject-bug xor --corpus-dir tests/corpus
 *
 * Runs thousands of randomized co-simulation jobs across a worker
 * pool, buckets failures by first-divergence signature, delta-debugs
 * one representative per bucket to a minimal reproducer, and emits a
 * machine-readable JSON report. Results are a pure function of the
 * seed range: --jobs changes throughput, never findings.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "campaign/campaign.h"
#include "isa/op.h"
#include "obs/topdown.h"

using namespace minjie;
using namespace minjie::campaign;

namespace {

void
usage()
{
    std::printf(
        "minjie-campaign [options]\n"
        "  --seeds N        number of jobs / seeds (default 200)\n"
        "  --seed-base N    first seed (default 1)\n"
        "  --jobs N         worker threads (default: hardware threads)\n"
        "  --insts N        body instructions per program (default 300)\n"
        "  --fp-pct P       %% of seeds with fp programs (default 25)\n"
        "  --rvc-pct P      %% of seeds with compressed code (default 30)\n"
        "  --difftest-pct P %% of seeds run as NEMU-vs-XiangShan DiffTest\n"
        "                   co-simulation (default 0)\n"
        "  --pairs A-B,...  engine pairs to cycle through, e.g.\n"
        "                   spike-tci,nemu-spike (engines: spike,\n"
        "                   dromajo, tci, nemu)\n"
        "  --inject-bug OP[:MASK]\n"
        "                   self-test: corrupt OP's destination on one\n"
        "                   engine (e.g. xor, add:0x80000000)\n"
        "  --nemu-no-chain  ablate NEMU block chaining in lockstep jobs\n"
        "  --nemu-no-fastpath\n"
        "                   ablate NEMU's memory fast path (host TLB +\n"
        "                   direct DRAM) in lockstep jobs\n"
        "  --xs-no-bitset   DUT reference scan-based scheduling in\n"
        "                   DiffTest jobs (cycle-exact, slower)\n"
        "  --xs-no-skip     ablate DUT event-driven idle-cycle skipping\n"
        "  --xs-no-batch    per-instruction DUT commit probe delivery\n"
        "  --perf           collect per-job DUT perf summaries for\n"
        "                   DiffTest jobs (top-down buckets, ipc) and\n"
        "                   a merged aggregate in the JSON report\n"
        "  --no-shrink      skip delta-debugging of failures\n"
        "  --corpus-dir D   write minimized failures into D as .mjc\n"
        "  --out FILE       write the JSON report to FILE (default\n"
        "                   campaign.json; '-' for stdout only)\n");
}

bool
parsePairs(const std::string &arg,
           std::vector<std::pair<Engine, Engine>> &out)
{
    out.clear();
    size_t pos = 0;
    while (pos < arg.size()) {
        size_t comma = arg.find(',', pos);
        std::string item = arg.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        size_t dash = item.find('-');
        if (dash == std::string::npos)
            return false;
        Engine a, b;
        if (!parseEngine(item.substr(0, dash), a) ||
            !parseEngine(item.substr(dash + 1), b))
            return false;
        out.push_back({a, b});
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out.empty();
}

bool
parseBug(const std::string &arg, BugInject &bug)
{
    std::string opName = arg;
    size_t colon = arg.find(':');
    if (colon != std::string::npos) {
        opName = arg.substr(0, colon);
        bug.xorMask = std::strtoull(arg.c_str() + colon + 1, nullptr, 0);
        if (bug.xorMask == 0)
            return false;
    }
    for (int i = 0; i < static_cast<int>(isa::Op::NumOps); ++i) {
        auto op = static_cast<isa::Op>(i);
        if (opName == isa::opName(op)) {
            bug.op = op;
            bug.enabled = true;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignConfig cfg;
    cfg.seedCount = 200;
    cfg.workers = std::max(1u, std::thread::hardware_concurrency());
    std::string outFile = "campaign.json";

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (a == "--seeds" && (v = next()))
            cfg.seedCount = std::strtoull(v, nullptr, 0);
        else if (a == "--seed-base" && (v = next()))
            cfg.seedBase = std::strtoull(v, nullptr, 0);
        else if (a == "--jobs" && (v = next()))
            cfg.workers = static_cast<unsigned>(
                std::strtoul(v, nullptr, 0));
        else if (a == "--insts" && (v = next()))
            cfg.nInsts = static_cast<unsigned>(
                std::strtoul(v, nullptr, 0));
        else if (a == "--fp-pct" && (v = next()))
            cfg.fpPct = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        else if (a == "--rvc-pct" && (v = next()))
            cfg.rvcPct =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        else if (a == "--difftest-pct" && (v = next()))
            cfg.difftestPct =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        else if (a == "--pairs" && (v = next())) {
            if (!parsePairs(v, cfg.pairs)) {
                std::fprintf(stderr, "bad --pairs: %s\n", v);
                return 2;
            }
        } else if (a == "--inject-bug" && (v = next())) {
            if (!parseBug(v, cfg.bug)) {
                std::fprintf(stderr, "bad --inject-bug: %s\n", v);
                return 2;
            }
        } else if (a == "--nemu-no-chain") {
            cfg.lockstep.nemuChain = false;
        } else if (a == "--nemu-no-fastpath") {
            cfg.lockstep.nemuFastPath = false;
        } else if (a == "--xs-no-bitset") {
            cfg.xsModel.bitsetSched = false;
        } else if (a == "--xs-no-skip") {
            cfg.xsModel.skipAhead = false;
        } else if (a == "--xs-no-batch") {
            cfg.xsModel.batchCommit = false;
        } else if (a == "--perf") {
            cfg.perf = true;
        } else if (a == "--no-shrink") {
            cfg.shrinkFailures = false;
        } else if (a == "--corpus-dir" && (v = next())) {
            cfg.corpusDir = v;
        } else if (a == "--out" && (v = next())) {
            outFile = v;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage();
            return 2;
        }
    }

    std::printf("campaign: %llu jobs on %u workers, seeds [%llu, %llu)\n",
                static_cast<unsigned long long>(cfg.seedCount),
                cfg.workers,
                static_cast<unsigned long long>(cfg.seedBase),
                static_cast<unsigned long long>(cfg.seedBase +
                                                cfg.seedCount));
    if (cfg.bug.enabled)
        std::printf("campaign: self-test bug injected on %s side %d "
                    "(mask 0x%llx)\n",
                    isa::opName(cfg.bug.op), cfg.bug.side,
                    static_cast<unsigned long long>(cfg.bug.xorMask));

    CampaignReport rep = runCampaign(cfg);

    std::printf("campaign: %llu jobs in %.2fs (%.0f jobs/s, %.1f MIPS "
                "aggregate), %llu failures in %zu buckets\n",
                static_cast<unsigned long long>(rep.jobs),
                rep.elapsedSec, rep.jobsPerSec, rep.mips,
                static_cast<unsigned long long>(rep.failures),
                rep.buckets.size());
    for (const auto &b : rep.buckets) {
        std::printf("  [%4zu seeds] %-28s rep seed %llu -> %u insts%s%s\n",
                    b.seeds.size(), b.signature.c_str(),
                    static_cast<unsigned long long>(b.repSeed),
                    b.shrunkInsts,
                    b.corpusFile.empty() ? "" : " -> ",
                    b.corpusFile.c_str());
    }

    if (cfg.perf) {
        obs::CounterSnapshot agg = rep.perfCounters();
        std::printf("campaign: perf aggregate over %llu difftest jobs: "
                    "%llu cycles, %llu instrs\n",
                    static_cast<unsigned long long>(
                        agg.get("dut.jobs")),
                    static_cast<unsigned long long>(
                        agg.get("dut.cycles")),
                    static_cast<unsigned long long>(
                        agg.get("dut.instrs")));
        // Aggregated counters are per-key sums, so the top-down
        // bucket partition survives aggregation exactly.
        auto stack = obs::CpiStack::fromCounters(agg, "dut");
        std::printf("%s", stack.table("campaign top-down").c_str());
        std::printf("campaign: top-down exact-sum: %s\n",
                    stack.sumsExactly() ? "PASS" : "FAIL");
    }

    if (outFile == "-") {
        std::printf("%s\n", rep.toJson().c_str());
    } else {
        std::ofstream f(outFile);
        f << rep.toJson() << "\n";
        f.close();
        if (!f) {
            std::fprintf(stderr, "campaign: cannot write %s\n",
                         outFile.c_str());
            return 2;
        }
        std::printf("campaign: JSON report written to %s\n",
                    outFile.c_str());
    }

    return rep.failures == 0 ? 0 : 1;
}
